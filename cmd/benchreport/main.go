// Command benchreport measures the simulation engines' throughput and
// writes a machine-readable benchmark report:
//
//	benchreport -out BENCH_engine.json
//	benchreport -validate BENCH_engine.json
//
// The report (schema bench-engine/v1) records terminal-slots per second
// and allocation rates for the slot-batched fast engine and the reference
// event-driven engine across population sizes, the fast path's
// steady-state hot-loop cost, and the resulting fast-over-DES speedups.
// Both engines produce bit-identical results (sim.TestFastPathEquivalence);
// this report tracks the wall-clock side of that contract. The -validate
// mode decodes a report strictly (unknown fields rejected) and checks its
// internal invariants, so CI can verify both the writer and a checked-in
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/sim"
)

// Schema identifies the report layout; bump on breaking changes.
const Schema = "bench-engine/v1"

// Params pins the workload the measurements ran under: the paper's
// Table 1/2 parameters on the exact 2-D model.
type Params struct {
	Model      string  `json:"model"`
	Q          float64 `json:"q"`
	C          float64 `json:"c"`
	UpdateCost float64 `json:"update_cost"`
	PollCost   float64 `json:"poll_cost"`
	MaxDelay   int     `json:"max_delay"`
	Threshold  int     `json:"threshold"`
	Slots      int64   `json:"slots"`
	Shards     int     `json:"shards"`
}

// Run is one engine × population measurement.
type Run struct {
	Engine              string  `json:"engine"`
	Terminals           int     `json:"terminals"`
	Shards              int     `json:"shards"`
	Slots               int64   `json:"slots"`
	NsPerTerminalSlot   float64 `json:"ns_per_terminal_slot"`
	TerminalSlotsPerSec float64 `json:"terminal_slots_per_sec"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
}

// HotLoop is the fast engine's steady-state cost with a single
// long-running terminal: slots scale with b.N so setup amortizes to
// nothing, making AllocsPerOp the hot loop's true allocation rate.
type HotLoop struct {
	NsPerTerminalSlot float64 `json:"ns_per_terminal_slot"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
}

// Speedup is the fast engine's throughput advantage at one population.
type Speedup struct {
	Terminals   int     `json:"terminals"`
	FastOverDES float64 `json:"fast_over_des"`
}

// Report is the full document written to -out.
type Report struct {
	Schema   string    `json:"schema"`
	Params   Params    `json:"params"`
	Runs     []Run     `json:"runs"`
	HotLoop  HotLoop   `json:"hot_loop"`
	Speedups []Speedup `json:"speedups"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process scaffolding, so tests can drive the full
// flag-to-output path in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	out := fs.String("out", "BENCH_engine.json", "output file for the report")
	termList := fs.String("terminals", "10000,100000,1000000", "comma-separated population sizes")
	slots := fs.Int64("slots", 256, "slots per run (large enough to amortize setup)")
	shards := fs.Int("shards", 1, "shard count for every run")
	reps := fs.Int("reps", 3, "repetitions per measurement; the best is kept")
	validate := fs.String("validate", "", "validate the report in this file instead of measuring")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		rep, err := readReport(*validate)
		if err != nil {
			return err
		}
		if err := validateReport(rep); err != nil {
			return fmt.Errorf("%s: %w", *validate, err)
		}
		fmt.Fprintf(stdout, "%s: valid %s report (%d runs)\n", *validate, rep.Schema, len(rep.Runs))
		return nil
	}

	terminals, err := parseTerminals(*termList)
	if err != nil {
		return err
	}
	if *slots <= 0 {
		return fmt.Errorf("slots %d must be positive", *slots)
	}
	if *reps <= 0 {
		return fmt.Errorf("reps %d must be positive", *reps)
	}

	params := defaultParams(*slots, *shards)
	var runs []Run
	for _, engine := range []sim.Engine{sim.EngineFast, sim.EngineDES} {
		for _, terms := range terminals {
			r := measureEngine(params, engine, terms, *reps)
			runs = append(runs, r)
			fmt.Fprintf(stdout, "%-4s %8d terminals: %11.0f terminal-slots/s (%.1f ns each)\n",
				r.Engine, r.Terminals, r.TerminalSlotsPerSec, r.NsPerTerminalSlot)
		}
	}
	hot := measureHotLoop()
	fmt.Fprintf(stdout, "hot loop: %.1f ns/terminal-slot, %d allocs/op\n",
		hot.NsPerTerminalSlot, hot.AllocsPerOp)

	rep := buildReport(params, runs, hot)
	for _, s := range rep.Speedups {
		fmt.Fprintf(stdout, "speedup %8d terminals: %.2fx fast over des\n", s.Terminals, s.FastOverDES)
	}
	if err := writeReport(*out, rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

// parseTerminals parses the -terminals list.
func parseTerminals(list string) ([]int, error) {
	var terminals []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("terminals %q: want a comma-separated list of positive counts", list)
		}
		terminals = append(terminals, n)
	}
	return terminals, nil
}

// defaultParams is the paper-typical workload every run measures under.
func defaultParams(slots int64, shards int) Params {
	return Params{
		Model:      "2d",
		Q:          paperdata.TableMoveProb,
		C:          paperdata.TableCallProb,
		UpdateCost: 100,
		PollCost:   paperdata.TablePollCost,
		MaxDelay:   3,
		Threshold:  3,
		Slots:      slots,
		Shards:     shards,
	}
}

// simConfig translates the report params into a simulator configuration.
func simConfig(p Params, engine sim.Engine, terminals int) sim.Config {
	return sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: p.Q, C: p.C},
			Costs:    core.Costs{Update: p.UpdateCost, Poll: p.PollCost},
			MaxDelay: p.MaxDelay,
		},
		Terminals: terminals,
		Threshold: p.Threshold,
		Seed:      1,
		Engine:    engine,
	}
}

// measureEngine benchmarks one engine at one population size, keeping the
// best of reps repetitions (the minimum-noise estimate on a shared
// machine).
func measureEngine(p Params, engine sim.Engine, terminals, reps int) Run {
	cfg := simConfig(p, engine, terminals)
	best := testing.BenchmarkResult{}
	for i := 0; i < reps; i++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSharded(cfg, p.Slots, p.Shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		if best.N == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	tslots := float64(terminals) * float64(p.Slots)
	nsPerOp := float64(best.NsPerOp())
	return Run{
		Engine:              engine.String(),
		Terminals:           terminals,
		Shards:              p.Shards,
		Slots:               p.Slots,
		NsPerTerminalSlot:   nsPerOp / tslots,
		TerminalSlotsPerSec: tslots / (nsPerOp / 1e9),
		AllocsPerOp:         best.AllocsPerOp(),
		BytesPerOp:          best.AllocedBytesPerOp(),
	}
}

// measureHotLoop benchmarks the fast engine's steady-state slot loop: one
// terminal, slots scaling with b.N, calls off so the loop is isolated
// from the paging machinery (movement stays heavy: q = 0.5 crosses the
// threshold and sends real updates through the wire codec).
func measureHotLoop() HotLoop {
	cfg := sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: 0.5, C: 0},
			Costs:    core.Costs{Update: 100, Poll: 10},
			MaxDelay: 3,
		},
		Terminals: 1,
		Threshold: 3,
		Seed:      1,
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if _, err := sim.Run(cfg, int64(b.N)+1); err != nil {
			b.Fatal(err)
		}
	})
	return HotLoop{
		NsPerTerminalSlot: float64(res.NsPerOp()),
		AllocsPerOp:       res.AllocsPerOp(),
		BytesPerOp:        res.AllocedBytesPerOp(),
	}
}

// buildReport assembles the document: the raw runs plus the per-population
// fast-over-DES speedups derived from them.
func buildReport(p Params, runs []Run, hot HotLoop) *Report {
	byKey := make(map[string]Run, len(runs))
	for _, r := range runs {
		byKey[fmt.Sprintf("%s/%d", r.Engine, r.Terminals)] = r
	}
	var speedups []Speedup
	for _, r := range runs {
		if r.Engine != sim.EngineFast.String() {
			continue
		}
		des, ok := byKey[fmt.Sprintf("%s/%d", sim.EngineDES.String(), r.Terminals)]
		if !ok || r.TerminalSlotsPerSec <= 0 {
			continue
		}
		speedups = append(speedups, Speedup{
			Terminals:   r.Terminals,
			FastOverDES: r.TerminalSlotsPerSec / des.TerminalSlotsPerSec,
		})
	}
	return &Report{Schema: Schema, Params: p, Runs: runs, HotLoop: hot, Speedups: speedups}
}

// readReport decodes a report strictly: unknown fields are schema
// violations, not extensions.
func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// validateReport checks a report's internal invariants: schema tag,
// positive finite measurements, both engines present for every population,
// speedups consistent with the runs they derive from, and a zero-alloc
// hot loop (the fast path's steady-state contract).
func validateReport(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	tsps := make(map[string]float64, len(r.Runs))
	for i, run := range r.Runs {
		if run.Engine != sim.EngineFast.String() && run.Engine != sim.EngineDES.String() {
			return fmt.Errorf("run %d: unknown engine %q", i, run.Engine)
		}
		if run.Terminals <= 0 || run.Slots <= 0 || run.Shards <= 0 {
			return fmt.Errorf("run %d: non-positive dimensions", i)
		}
		if !positiveFinite(run.NsPerTerminalSlot) || !positiveFinite(run.TerminalSlotsPerSec) {
			return fmt.Errorf("run %d: non-positive measurements", i)
		}
		if run.AllocsPerOp < 0 || run.BytesPerOp < 0 {
			return fmt.Errorf("run %d: negative allocation counts", i)
		}
		key := fmt.Sprintf("%s/%d", run.Engine, run.Terminals)
		if _, dup := tsps[key]; dup {
			return fmt.Errorf("run %d: duplicate %s", i, key)
		}
		tsps[key] = run.TerminalSlotsPerSec
	}
	for i, s := range r.Speedups {
		fast, okF := tsps[fmt.Sprintf("fast/%d", s.Terminals)]
		des, okD := tsps[fmt.Sprintf("des/%d", s.Terminals)]
		if !okF || !okD {
			return fmt.Errorf("speedup %d: no run pair at %d terminals", i, s.Terminals)
		}
		want := fast / des
		if !positiveFinite(s.FastOverDES) || math.Abs(s.FastOverDES-want) > 1e-6*want {
			return fmt.Errorf("speedup %d: %v inconsistent with runs (want %v)", i, s.FastOverDES, want)
		}
	}
	if !positiveFinite(r.HotLoop.NsPerTerminalSlot) {
		return fmt.Errorf("hot loop: non-positive cost")
	}
	if r.HotLoop.AllocsPerOp != 0 || r.HotLoop.BytesPerOp != 0 {
		return fmt.Errorf("hot loop: %d allocs/op, %d B/op — the steady-state loop must not allocate",
			r.HotLoop.AllocsPerOp, r.HotLoop.BytesPerOp)
	}
	return nil
}

func positiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// writeReport marshals the report with a trailing newline.
func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
