package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation is the table-driven error-path coverage for the
// CLI surface.
func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no mode", nil, "-gen or -replay"},
		{"unknown model", []string{"-gen", "-model", "3d"}, "unknown model"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing replay file", []string{"-replay", "no/such/file.csv"}, "no such file"},
		{"bad params", []string{"-gen", "-q", "0.9", "-c", "0.9"}, "q"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &strings.Builder{})
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunGenReplayGolden pins the generate→replay round trip on a tiny
// deterministic trace: the generated file, the wrote-line, and the full
// replay report.
func TestRunGenReplayGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")

	var gen strings.Builder
	err := run([]string{"-gen", "-model", "1d", "-q", "0.2", "-c", "0.1",
		"-slots", "200", "-seed", "7", "-out", path}, &gen)
	if err != nil {
		t.Fatal(err)
	}
	if want := "wrote " + path + ": 200 slots, 61 events\n"; gen.String() != want {
		t.Errorf("gen output %q, want %q", gen.String(), want)
	}

	var rep strings.Builder
	err = run([]string{"-replay", path, "-d", "2", "-m", "2", "-U", "10", "-V", "1"}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	want := "trace          " + path + ` (200 slots, 61 events)
threshold d    2, max delay 2 cycles
updates        2
calls          21 (polled 57 cells, mean delay 1.429 cycles)
per-slot cost  0.385000 (update 0.100000 + paging 0.285000)
`
	if rep.String() != want {
		t.Errorf("replay output:\n%s\nwant:\n%s", rep.String(), want)
	}
}

// TestRunJSONLRoundTrip checks the format switch: a .jsonl extension
// writes and reads the JSONL codec, replaying to the same result as CSV.
func TestRunJSONLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gen := func(name string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		err := run([]string{"-gen", "-model", "1d", "-q", "0.2", "-c", "0.1",
			"-slots", "100", "-seed", "3", "-out", path}, &strings.Builder{})
		if err != nil {
			t.Fatal(err)
		}
		var rep strings.Builder
		if err := run([]string{"-replay", path, "-d", "2", "-m", "2"}, &rep); err != nil {
			t.Fatal(err)
		}
		// Strip the first line: it names the file, which differs.
		_, rest, _ := strings.Cut(rep.String(), "\n")
		return rest
	}
	if csv, jsonl := gen("t.csv"), gen("t.jsonl"); csv != jsonl {
		t.Errorf("replay reports differ between codecs:\ncsv:\n%s\njsonl:\n%s", csv, jsonl)
	}
}

func TestDelayName(t *testing.T) {
	if got := delayName(0); got != "unbounded" {
		t.Errorf("delayName(0) = %q", got)
	}
	if got := delayName(4); got != "4 cycles" {
		t.Errorf("delayName(4) = %q", got)
	}
}
