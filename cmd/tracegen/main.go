// Command tracegen generates synthetic mobility/call traces from the
// paper's workload model and replays recorded traces through the
// location-update/paging mechanism:
//
//	tracegen -gen -model 2d -q 0.05 -c 0.01 -slots 1000000 -out trace.csv
//	tracegen -replay trace.csv -d 3 -m 2 -U 100 -V 10
//
// The trace format (CSV or JSONL, chosen by file extension) is documented
// in internal/trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process scaffolding, so tests can drive the full
// flag-to-output path in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	gen := fs.Bool("gen", false, "generate a trace")
	replay := fs.String("replay", "", "replay the trace in this file")
	model := fs.String("model", "2d", "grid for -gen: 1d or 2d")
	q := fs.Float64("q", 0.05, "movement probability for -gen")
	c := fs.Float64("c", 0.01, "call probability for -gen")
	slots := fs.Int64("slots", 1_000_000, "trace length for -gen")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "trace.csv", "output file for -gen (.csv or .jsonl)")
	d := fs.Int("d", 3, "threshold distance for -replay")
	m := fs.Int("m", 0, "max paging delay for -replay (0 = unbounded)")
	u := fs.Float64("U", 100, "update cost for -replay")
	v := fs.Float64("V", 10, "poll cost for -replay")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *gen:
		kind := grid.TwoDimHex
		if *model == "1d" {
			kind = grid.OneDim
		} else if *model != "2d" {
			return fmt.Errorf("unknown model %q", *model)
		}
		tr, err := trace.Generate(kind, chain.Params{Q: *q, C: *c}, *slots, *seed)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*out, ".jsonl") {
			err = trace.WriteJSONL(f, tr)
		} else {
			err = trace.WriteCSV(f, tr)
		}
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d slots, %d events\n", *out, tr.Slots, len(tr.Events))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		var tr *trace.Trace
		if strings.HasSuffix(*replay, ".jsonl") {
			tr, err = trace.ReadJSONL(f)
		} else {
			tr, err = trace.ReadCSV(f)
		}
		if err != nil {
			return err
		}
		res, err := trace.Replay(tr, *d, *m, core.Costs{Update: *u, Poll: *v}, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace          %s (%d slots, %d events)\n", *replay, tr.Slots, len(tr.Events))
		fmt.Fprintf(stdout, "threshold d    %d, max delay %s\n", *d, delayName(*m))
		fmt.Fprintf(stdout, "updates        %d\n", res.Updates)
		fmt.Fprintf(stdout, "calls          %d (polled %d cells, mean delay %.3f cycles)\n",
			res.Calls, res.PolledCells, res.Delay.Mean())
		fmt.Fprintf(stdout, "per-slot cost  %.6f (update %.6f + paging %.6f)\n",
			res.TotalCost, res.UpdateCost, res.PagingCost)

	default:
		return fmt.Errorf("choose a mode: -gen or -replay FILE")
	}
	return nil
}

func delayName(m int) string {
	if m == 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d cycles", m)
}
