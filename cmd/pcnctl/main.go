// Command pcnctl is the client for the pcnserve job service:
//
//	pcnctl -addr http://localhost:8080 submit -q 0.05 -c 0.01 -U 100 -V 10 \
//	       -m 3 -terminals 50 -slots 200000 -wait > report.json
//	pcnctl submit -scenario rush-hour-hotspot -terminals 100 -slots 50000 -wait
//	pcnctl submit -scheme movement -scheme-param 6 -hetero -wait
//	pcnctl list
//	pcnctl get j000001
//	pcnctl watch j000001
//	pcnctl cancel j000001
//	pcnctl result j000001 > report.json
//	pcnctl query -where "scheme=distance" -by scenario,d -agg "count,mean(total_cost),p95(delay_p95)"
//
// submit mirrors the pcnsim flag surface (including the fault-injection
// flags) and posts the job spec; with -wait it follows the job's NDJSON
// stream, reporting progress on stderr, and prints the final report on
// stdout. The report bytes are copied verbatim from the service, so
// `pcnctl submit ... -wait` output is byte-identical to `pcnsim -json`
// run with the same configuration.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/results"
	"repro/internal/server"
	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnctl: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

const usage = `usage: pcnctl [-addr URL] <command> [flags]

commands:
  submit    submit a job (flags mirror pcnsim; -wait follows it to completion)
  get       print one job document:        pcnctl get <id>
  list      print all jobs
  watch     stream a job's NDJSON frames:  pcnctl watch <id>
  cancel    cancel a job:                  pcnctl cancel <id>
  result    print a finished job's report: pcnctl result <id>
  query     aggregate stored results:      pcnctl query [-where ...] [-by ...] -agg ...
  nodes     print a coordinator's cluster document (nodes, leases)
`

// run is the testable entry point: it parses the global flags and
// dispatches the subcommand, writing documents to stdout and progress
// chatter to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	global := flag.NewFlagSet("pcnctl", flag.ContinueOnError)
	global.SetOutput(stderr)
	global.Usage = func() { fmt.Fprint(stderr, usage) }
	addr := global.String("addr", "http://localhost:8080", "pcnserve base URL")
	retries := global.Int("retries", 4,
		"retry transient connection failures (refused/reset) this many times before giving up")
	retryBase := global.Duration("retry-base", 200*time.Millisecond,
		"first retry backoff; doubles per attempt with ±50% jitter")
	if err := global.Parse(args); err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", *retries)
	}
	if *retryBase <= 0 {
		return fmt.Errorf("-retry-base must be positive, got %v", *retryBase)
	}
	rest := global.Args()
	if len(rest) == 0 {
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("missing command")
	}
	c := &client{
		base:      strings.TrimRight(*addr, "/"),
		retries:   *retries,
		retryBase: *retryBase,
		sleep:     time.Sleep,
	}

	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return c.submit(rest, stdout, stderr)
	case "get":
		id, err := oneID(cmd, rest)
		if err != nil {
			return err
		}
		return c.printJSON(stdout, "GET", "/api/v1/jobs/"+id, nil)
	case "list":
		return c.printJSON(stdout, "GET", "/api/v1/jobs", nil)
	case "cancel":
		id, err := oneID(cmd, rest)
		if err != nil {
			return err
		}
		return c.printJSON(stdout, "POST", "/api/v1/jobs/"+id+"/cancel", nil)
	case "watch":
		id, err := oneID(cmd, rest)
		if err != nil {
			return err
		}
		return c.watch(id, stdout, stderr)
	case "nodes":
		if len(rest) != 0 {
			return fmt.Errorf("usage: pcnctl nodes")
		}
		return c.printJSON(stdout, "GET", "/cluster", nil)
	case "result":
		id, err := oneID(cmd, rest)
		if err != nil {
			return err
		}
		return c.copyBody(stdout, "/api/v1/jobs/"+id+"/result")
	case "query":
		return c.query(rest, stdout, stderr)
	default:
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// oneID extracts the single <id> operand a command expects.
func oneID(cmd string, rest []string) (string, error) {
	if len(rest) != 1 {
		return "", fmt.Errorf("usage: pcnctl %s <job-id>", cmd)
	}
	return rest[0], nil
}

// submit parses the pcnsim-mirroring flag surface into a job Spec,
// posts it, and either prints the accepted job document or (-wait)
// follows the stream and prints the final report verbatim.
func (c *client) submit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcnctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "2d", "mobility model: 1d or 2d")
	q := fs.Float64("q", 0.05, "per-slot movement probability")
	cc := fs.Float64("c", 0.01, "per-slot call-arrival probability")
	u := fs.Float64("U", 100, "location-update cost")
	v := fs.Float64("V", 10, "per-cell polling cost")
	m := fs.Int("m", 3, "maximum paging delay in polling cycles (0 = unbounded)")
	terminals := fs.Int("terminals", 20, "number of mobile terminals")
	slots := fs.Int64("slots", 200_000, "time slots to simulate")
	threshold := fs.Int("d", -1, "static threshold (-1 = network-optimized)")
	dynamic := fs.Bool("dynamic", false, "per-terminal online estimation and re-optimization")
	hetero := fs.Bool("hetero", false,
		"heterogeneous population (per-terminal q varies ±50%, like pcnsim -hetero)")
	scheme := fs.String("scheme", "",
		"location-update scheme: "+strings.Join(locman.UpdateSchemeNames(), ", ")+" (default distance)")
	schemeParam := fs.Int64("scheme-param", 0,
		"update-scheme parameter: timer period or movement count in slots")
	scenario := fs.String("scenario", "",
		"run a registered scenario: "+strings.Join(locman.ScenarioNames(), ", ")+
			" (fixes the model; run-shape flags still apply)")
	reoptEvery := fs.Int64("reoptimize-every", 0,
		"dynamic re-optimization period in slots (0 = engine default)")
	partition := fs.String("partition", "",
		"paging partitioner: "+strings.Join(locman.PartitionNames(), ", ")+" (default sdf)")
	loss := fs.Float64("loss", 0, "update-message loss probability (failure injection)")
	pollLoss := fs.Float64("poll-loss", 0, "downlink paging-poll loss probability")
	replyLoss := fs.Float64("reply-loss", 0, "uplink paging-reply loss probability")
	updateRetries := fs.Int("update-retries", 0,
		"acked-update retransmission budget (0 = fire-and-forget updates)")
	ackTimeout := fs.Int64("ack-timeout", 0,
		"first retransmission timeout in scheduler ticks (0 = default)")
	pageRetries := fs.Int("page-retries", 0,
		"recovery paging rounds before a call is dropped (0 = default)")
	outages := fs.String("outage", "",
		"HLR outage windows in slots, e.g. 1000:2000,5000:5500")
	telemetryEvery := fs.Int64("telemetry-every", 0,
		"capture a telemetry snapshot frame every N slots (0 = off)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"parallel simulation shards (results are identical for any shard count)")
	engine := fs.String("engine", "fast",
		"simulation engine: "+strings.Join(locman.EngineNames(), " or "))
	timeoutSec := fs.Float64("timeout", 0,
		"per-job wall-clock deadline in seconds (0 = none)")
	wait := fs.Bool("wait", false,
		"follow the job to completion and print the final report on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("submit: unexpected operand %q", fs.Arg(0))
	}

	var spec jobs.Spec
	if *scenario != "" {
		// The scenario fixes the model half of the Spec; a model flag set
		// alongside it would be rejected by the service anyway, but the
		// flag-set defaults (q=0.05, U=100, ...) are not zero, so the
		// model fields must be left unset rather than copied — and an
		// explicitly set model flag is reported here, in flag spelling.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		var conflicts []string
		for _, name := range []string{
			"model", "q", "c", "U", "V", "m", "partition", "dynamic",
			"reoptimize-every", "hetero", "scheme", "scheme-param", "loss",
			"poll-loss", "reply-loss", "update-retries", "ack-timeout",
			"page-retries", "outage",
		} {
			if set[name] {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			return fmt.Errorf("-scenario %s fixes the model; drop the conflicting flag(s): %s",
				*scenario, strings.Join(conflicts, ", "))
		}
		spec = jobs.Spec{Scenario: *scenario}
	} else {
		spec = jobs.Spec{
			Model:           *model,
			MoveProb:        *q,
			CallProb:        *cc,
			UpdateCost:      *u,
			PollCost:        *v,
			MaxDelay:        *m,
			Partition:       *partition,
			Scheme:          *scheme,
			SchemeParam:     *schemeParam,
			Dynamic:         *dynamic,
			ReoptimizeEvery: *reoptEvery,
		}
		if *hetero {
			spec.Fleet = jobs.HeteroFleet(*q, *cc)
		}
		faults := jobs.FaultSpec{
			UpdateLoss:    *loss,
			PollLoss:      *pollLoss,
			ReplyLoss:     *replyLoss,
			UpdateRetries: *updateRetries,
			AckTimeout:    *ackTimeout,
			PageRetries:   *pageRetries,
		}
		if *outages != "" {
			windows, err := parseOutages(*outages)
			if err != nil {
				return err
			}
			faults.Outages = windows
		}
		if faults.UpdateLoss != 0 || faults.PollLoss != 0 || faults.ReplyLoss != 0 ||
			faults.UpdateRetries != 0 || faults.AckTimeout != 0 || faults.PageRetries != 0 ||
			len(faults.Outages) > 0 {
			spec.Faults = &faults
		}
	}
	spec.Terminals = *terminals
	spec.Slots = *slots
	spec.Shards = *shards
	spec.SnapshotEvery = *telemetryEvery
	spec.Seed = *seed
	spec.Engine = *engine
	spec.TimeoutSec = *timeoutSec
	if *threshold >= 0 {
		spec.Threshold = threshold
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.do("POST", "/api/v1/jobs", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	accepted, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var view jobs.View
	if err := json.Unmarshal(accepted, &view); err != nil {
		return fmt.Errorf("submit: undecodable response: %w", err)
	}
	if !*wait {
		_, err := stdout.Write(accepted)
		return err
	}

	fmt.Fprintf(stderr, "submitted %s, waiting\n", view.ID)
	state, err := c.follow(view.ID, stderr)
	if err != nil {
		return err
	}
	if state != jobs.StateDone {
		return fmt.Errorf("job %s finished %s", view.ID, state)
	}
	// The report is fetched from /result and copied verbatim: these are
	// the service's stored bytes, identical to pcnsim -json output.
	return c.copyBody(stdout, "/api/v1/jobs/"+view.ID+"/result")
}

// query builds an analytics query from the flag surface, posts it to
// /query, and prints the response document verbatim — the service's
// bytes, which are deterministic for a given stored sweep (the CI golden
// diff and restart byte-identity checks depend on that verbatim copy).
func (c *client) query(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcnctl query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var where multiFlag
	fs.Var(&where, "where",
		"row filter `column OP value` (repeatable, ANDed; OP: = != < <= > >=)")
	by := fs.String("by", "", "comma-separated group-by columns")
	agg := fs.String("agg", "count",
		"comma-separated aggregates: count or op(column) with op mean, min, max, p50, p95, p99")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("query: unexpected operand %q", fs.Arg(0))
	}

	req := results.Request{Schema: results.QuerySchema}
	for _, w := range where {
		f, err := parseFilter(w)
		if err != nil {
			return err
		}
		req.Filter = append(req.Filter, f)
	}
	if *by != "" {
		for _, col := range strings.Split(*by, ",") {
			req.GroupBy = append(req.GroupBy, strings.TrimSpace(col))
		}
	}
	for _, a := range strings.Split(*agg, ",") {
		parsed, err := parseAggregate(a)
		if err != nil {
			return err
		}
		req.Aggregates = append(req.Aggregates, parsed)
	}
	// Validate locally for immediate, enumerate-the-valid-names errors;
	// the service re-validates anyway.
	if err := req.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.printJSON(stdout, "POST", "/query", body)
}

// parseFilter parses one -where operand, "column OP value". The value's
// type follows the column: string columns take the literal verbatim,
// numeric columns require a number.
func parseFilter(s string) (results.Filter, error) {
	for _, o := range []struct{ tok, op string }{
		{"<=", "le"}, {">=", "ge"}, {"!=", "ne"}, {"=", "eq"}, {"<", "lt"}, {">", "gt"},
	} {
		i := strings.Index(s, o.tok)
		if i <= 0 {
			continue
		}
		col := strings.TrimSpace(s[:i])
		val := strings.TrimSpace(s[i+len(o.tok):])
		kind, err := results.ColumnKind(col)
		if err != nil {
			return results.Filter{}, err
		}
		f := results.Filter{Column: col, Op: o.op}
		if kind == results.KindString {
			f.Value = val
		} else {
			num, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return results.Filter{}, fmt.Errorf(
					"filter %q: column %s is numeric but %q is not a number", s, col, val)
			}
			f.Value = num
		}
		return f, nil
	}
	return results.Filter{}, fmt.Errorf(
		"filter %q is not column OP value (OP: = != < <= > >=)", s)
}

// parseAggregate parses one -agg element: "count" or "op(column)".
func parseAggregate(s string) (results.Aggregate, error) {
	s = strings.TrimSpace(s)
	if s == "count" {
		return results.Aggregate{Op: "count"}, nil
	}
	op, rest, ok := strings.Cut(s, "(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return results.Aggregate{}, fmt.Errorf("aggregate %q is not count or op(column)", s)
	}
	return results.Aggregate{
		Op:     strings.TrimSpace(op),
		Column: strings.TrimSpace(strings.TrimSuffix(rest, ")")),
	}, nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// follow consumes a job's NDJSON stream to its terminal state,
// reattaching (bounded by -retries) when the stream drops: a crashed or
// restarting pcnserve resets the connection, and for a moment after
// restart it may 404/503 the job while journal replay rebuilds the
// table. Submitted jobs survive the crash (the durable journal
// re-enqueues them), so reattaching and waiting is the right move.
func (c *client) follow(id string, stderr io.Writer) (jobs.State, error) {
	var state jobs.State
	attached := false
	err := c.retrying(
		func(err error) bool {
			if !attached {
				// Never attached: only connection-level failures retry;
				// a 404 here means the job genuinely does not exist.
				return transient(err)
			}
			return reattachable(err)
		},
		func() error {
			var err error
			var ok bool
			state, ok, err = c.followOnce(id, stderr)
			attached = attached || ok
			if err != nil && attached {
				fmt.Fprintf(stderr, "%s: stream dropped (%v), reattaching\n", id, err)
			}
			return err
		})
	return state, err
}

// followOnce attaches to the stream once; the bool reports whether the
// attach succeeded (frames may follow), even if the stream later died.
func (c *client) followOnce(id string, stderr io.Writer) (jobs.State, bool, error) {
	resp, err := c.do("GET", "/api/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	last := jobs.State("")
	for sc.Scan() {
		var f server.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return "", true, fmt.Errorf("watch %s: bad frame %q: %w", id, sc.Text(), err)
		}
		switch f.Type {
		case "state":
			fmt.Fprintf(stderr, "%s: %s\n", id, f.State)
		case "progress":
			if f.TotalTerminalSlots > 0 {
				fmt.Fprintf(stderr, "%s: %s %.1f%% (%d/%d terminal-slots)\n", id, f.State,
					100*float64(f.TerminalSlots)/float64(f.TotalTerminalSlots),
					f.TerminalSlots, f.TotalTerminalSlots)
			}
		case "result":
			if f.Error != "" {
				fmt.Fprintf(stderr, "%s: %s: %s\n", id, f.State, f.Error)
			} else {
				fmt.Fprintf(stderr, "%s: %s\n", id, f.State)
			}
			return f.State, true, nil
		}
		last = f.State
	}
	if err := sc.Err(); err != nil {
		return last, true, fmt.Errorf("watch %s: %w", id, err)
	}
	return last, true, fmt.Errorf("watch %s: %w", id, errStreamEnded)
}

// watch copies a job's NDJSON stream to stdout with the same
// reattach policy follow uses: a dropped or 404/503'd stream is
// reattached (bounded by -retries) once it had attached at all. The
// coordinator-proxied case is why: while a cluster coordinator
// re-dispatches a dead worker's slice — or restarts and replays its
// journal — the stream can drop or briefly answer 503, but the job
// itself is fine, so the watcher should ride it out.
func (c *client) watch(id string, stdout, stderr io.Writer) error {
	attached := false
	return c.retrying(
		func(err error) bool {
			if !attached {
				return transient(err)
			}
			return reattachable(err)
		},
		func() error {
			ok, err := c.watchOnce(id, stdout)
			attached = attached || ok
			if err != nil && attached {
				fmt.Fprintf(stderr, "%s: stream dropped (%v), reattaching\n", id, err)
			}
			return err
		})
}

// watchOnce attaches once, copying frames verbatim until the terminal
// result frame; the bool reports whether the attach succeeded.
func (c *client) watchOnce(id string, stdout io.Writer) (bool, error) {
	resp, err := c.do("GET", "/api/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f server.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return true, fmt.Errorf("watch %s: bad frame %q: %w", id, sc.Text(), err)
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", sc.Bytes()); err != nil {
			return true, err
		}
		if f.Type == "result" {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return true, fmt.Errorf("watch %s: %w", id, err)
	}
	return true, fmt.Errorf("watch %s: %w", id, errStreamEnded)
}

// parseOutages parses comma-separated start:end slot windows, matching
// the pcnsim -outage syntax.
func parseOutages(s string) ([]jobs.OutageSpec, error) {
	var out []jobs.OutageSpec
	for _, w := range strings.Split(s, ",") {
		start, end, ok := strings.Cut(w, ":")
		if !ok {
			return nil, fmt.Errorf("outage window %q is not start:end", w)
		}
		a, err := strconv.ParseInt(strings.TrimSpace(start), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		b, err := strconv.ParseInt(strings.TrimSpace(end), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		out = append(out, jobs.OutageSpec{Start: a, End: b})
	}
	return out, nil
}

// client is a minimal pcnserve API client with transient-failure
// retries; see retry.go for the policy.
type client struct {
	base      string
	hc        http.Client
	retries   int
	retryBase time.Duration
	sleep     func(time.Duration) // time.Sleep, injectable for tests
}

// do performs one request, retrying transient connection failures, and
// turns non-2xx responses into *statusError using the service's
// {"error": "..."} body. The body is taken as bytes, not a reader, so
// every retry attempt sends the complete payload.
func (c *client) do(method, path string, body []byte) (*http.Response, error) {
	var resp *http.Response
	err := c.retrying(transient, func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = c.hc.Do(req)
		return err
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("%s %s: %s", method, path, resp.Status)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = fmt.Sprintf("%s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return nil, &statusError{code: resp.StatusCode, msg: msg}
	}
	return resp, nil
}

// printJSON performs a request and copies the JSON document to stdout.
func (c *client) printJSON(stdout io.Writer, method, path string, body []byte) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(stdout, resp.Body)
	return err
}

// copyBody streams a GET response body to stdout verbatim.
func (c *client) copyBody(stdout io.Writer, path string) error {
	resp, err := c.do("GET", path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(stdout, resp.Body)
	return err
}
