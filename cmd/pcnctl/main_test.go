package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/server"
	"repro/locman"
)

// startService boots a real manager+server pair for the CLI to talk to.
func startService(t *testing.T) string {
	t.Helper()
	mgr := jobs.New(jobs.Options{QueueDepth: 8, Workers: 2})
	srv := httptest.NewServer(server.New(mgr, server.Options{}))
	t.Cleanup(func() {
		srv.Close()
		_ = mgr.Shutdown(context.Background())
	})
	return srv.URL
}

// TestSubmitWaitByteIdentical drives the full CLI path: submit -wait
// must print on stdout exactly what pcnsim -json would for the same
// configuration.
func TestSubmitWaitByteIdentical(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	args := []string{"-addr", url, "submit",
		"-q", "0.05", "-c", "0.01", "-U", "100", "-V", "10", "-m", "3",
		"-terminals", "10", "-slots", "2000", "-shards", "2", "-seed", "1",
		"-loss", "0.1", "-telemetry-every", "500", "-wait"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	cfg := locman.NetworkConfig{
		Config: locman.Config{
			Model:      locman.TwoDimensional,
			MoveProb:   0.05,
			CallProb:   0.01,
			UpdateCost: 100,
			PollCost:   10,
			MaxDelay:   3,
		},
		Terminals:     10,
		Threshold:     -1,
		Faults:        locman.FaultPlan{UpdateLoss: 0.1},
		SnapshotEvery: 500,
		Seed:          1,
	}
	metrics, err := locman.SimulateNetworkSharded(cfg, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	enc := json.NewEncoder(&direct)
	enc.SetIndent("", "  ")
	if err := enc.Encode(locman.NewReport(metrics)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), direct.Bytes()) {
		t.Fatal("submit -wait output diverged from direct engine run")
	}
	if !strings.Contains(stderr.String(), "done") {
		t.Errorf("stderr never reported completion: %s", stderr.String())
	}
}

// directReport renders the locman Report for cfg exactly as pcnsim
// -json would, for byte comparisons against CLI output.
func directReport(t *testing.T, cfg locman.NetworkConfig, slots int64, shards int) []byte {
	t.Helper()
	metrics, err := locman.SimulateNetworkSharded(cfg, slots, shards)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	enc := json.NewEncoder(&direct)
	enc.SetIndent("", "  ")
	if err := enc.Encode(locman.NewReport(metrics)); err != nil {
		t.Fatal(err)
	}
	return direct.Bytes()
}

// TestSubmitScenarioByteIdentical drives the scenario path end to end:
// submit -scenario -wait must print the same bytes a direct engine run
// of the registered scenario produces — the registry parity contract.
func TestSubmitScenarioByteIdentical(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	args := []string{"-addr", url, "submit", "-scenario", "flash-crowd",
		"-terminals", "8", "-slots", "2000", "-shards", "2", "-seed", "4",
		"-telemetry-every", "500", "-wait"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	sc, err := locman.ScenarioByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Network()
	cfg.Terminals = 8
	cfg.Seed = 4
	cfg.SnapshotEvery = 500
	if direct := directReport(t, cfg, 2000, 2); !bytes.Equal(stdout.Bytes(), direct) {
		t.Fatal("submit -scenario output diverged from the registry's direct run")
	}
}

// TestSubmitHeteroByteIdentical holds the Spec's declarative fleet to
// the -hetero parity contract against a direct locman.HeteroFleet run.
func TestSubmitHeteroByteIdentical(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	args := []string{"-addr", url, "submit", "-hetero",
		"-q", "0.1", "-c", "0.02", "-terminals", "13", "-slots", "2000",
		"-shards", "2", "-seed", "6", "-wait"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	cfg := locman.NetworkConfig{
		Config: locman.Config{
			Model:      locman.TwoDimensional,
			MoveProb:   0.1,
			CallProb:   0.02,
			UpdateCost: 100,
			PollCost:   10,
			MaxDelay:   3,
		},
		Terminals: 13,
		Threshold: -1,
		Fleet:     locman.HeteroFleet(0.1, 0.02),
		Seed:      6,
	}
	if direct := directReport(t, cfg, 2000, 2); !bytes.Equal(stdout.Bytes(), direct) {
		t.Fatal("submit -hetero output diverged from the direct fleet run")
	}
}

// TestSubcommands exercises get/list/cancel/result round-trips and the
// CLI's error surfaces.
func TestSubcommands(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	args := []string{"-addr", url, "submit",
		"-terminals", "10", "-slots", "2000", "-shards", "2", "-wait"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("submit: %v", err)
	}

	for _, tc := range []struct {
		args []string
		want string // substring of stdout
	}{
		{[]string{"-addr", url, "get", "j000001"}, `"state": "done"`},
		{[]string{"-addr", url, "list"}, `"jobs"`},
		{[]string{"-addr", url, "result", "j000001"}, `"schema": 1`},
		{[]string{"-addr", url, "watch", "j000001"}, `"type":"result"`},
	} {
		stdout.Reset()
		if err := run(tc.args, &stdout, &stderr); err != nil {
			t.Errorf("%v: %v", tc.args[2:], err)
			continue
		}
		if !strings.Contains(stdout.String(), tc.want) {
			t.Errorf("%v output missing %q:\n%s", tc.args[2:], tc.want, stdout.String())
		}
	}

	for _, tc := range []struct {
		args []string
		want string // substring of the error
	}{
		{[]string{"-addr", url, "get", "j999999"}, "no such job"},
		{[]string{"-addr", url, "get"}, "usage"},
		{[]string{"-addr", url, "explode"}, "unknown command"},
		{[]string{"-addr", url}, "missing command"},
		{[]string{"-addr", url, "submit", "-terminals", "0"}, "terminals"},
		{[]string{"-addr", url, "submit", "-outage", "bogus"}, "start:end"},
		{[]string{"-addr", url, "submit", "-scheme", "psychic"}, "unknown update scheme"},
		{[]string{"-addr", url, "submit", "-scheme", "timer"}, "timer scheme period"},
		{[]string{"-addr", url, "submit", "-scenario", "rush-hour"}, "unknown scenario"},
		{[]string{"-addr", url, "submit", "-scenario", "baseline", "-q", "0.3"},
			"conflicting flag(s): -q"},
		{[]string{"-addr", url, "submit", "-scenario", "baseline", "-hetero", "-loss", "0.1"},
			"conflicting flag(s): -hetero, -loss"},
	} {
		stdout.Reset()
		err := run(tc.args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %v, want substring %q", tc.args[2:], err, tc.want)
		}
	}
}
