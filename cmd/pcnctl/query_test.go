package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/results"
	"repro/internal/server"
)

func TestParseFilter(t *testing.T) {
	cases := []struct {
		in   string
		want results.Filter
	}{
		{"scenario = baseline", results.Filter{Column: "scenario", Op: "eq", Value: "baseline"}},
		{"d<=3", results.Filter{Column: "d", Op: "le", Value: float64(3)}},
		{"d >= 2", results.Filter{Column: "d", Op: "ge", Value: float64(2)}},
		{"total_cost != 0", results.Filter{Column: "total_cost", Op: "ne", Value: float64(0)}},
		{"q < 0.1", results.Filter{Column: "q", Op: "lt", Value: 0.1}},
		{"calls > 100", results.Filter{Column: "calls", Op: "gt", Value: float64(100)}},
		// A string column's value is taken verbatim, even if numeric-looking.
		{"job = j000001", results.Filter{Column: "job", Op: "eq", Value: "j000001"}},
	}
	for _, tc := range cases {
		got, err := parseFilter(tc.in)
		if err != nil {
			t.Errorf("parseFilter(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseFilter(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}

	for _, tc := range []struct {
		in      string
		wantSub string
	}{
		{"scenario baseline", "not column OP value"},
		{"= baseline", "not column OP value"},
		{"nope = 1", "valid columns:"},
		{"d = three", "not a number"},
	} {
		if _, err := parseFilter(tc.in); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("parseFilter(%q) error %v, want substring %q", tc.in, err, tc.wantSub)
		}
	}
}

func TestParseAggregate(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want results.Aggregate
	}{
		{"count", results.Aggregate{Op: "count"}},
		{" count ", results.Aggregate{Op: "count"}},
		{"mean(total_cost)", results.Aggregate{Op: "mean", Column: "total_cost"}},
		{"p95( delay_p95 )", results.Aggregate{Op: "p95", Column: "delay_p95"}},
	} {
		got, err := parseAggregate(tc.in)
		if err != nil {
			t.Errorf("parseAggregate(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseAggregate(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"mean", "mean(total_cost", "mean total_cost)"} {
		if _, err := parseAggregate(in); err == nil ||
			!strings.Contains(err.Error(), "not count or op(column)") {
			t.Errorf("parseAggregate(%q) error %v", in, err)
		}
	}
}

// TestQuerySubcommand drives pcnctl query against a live service: run a
// sweep of two thresholds, then group by d and check the aggregate
// document that comes back verbatim.
func TestQuerySubcommand(t *testing.T) {
	store := results.NewStore()
	mgr := jobs.New(jobs.Options{QueueDepth: 8, Workers: 2, Results: store})
	srv := httptest.NewServer(server.New(mgr, server.Options{Results: store}))
	t.Cleanup(func() {
		srv.Close()
		_ = mgr.Shutdown(context.Background())
	})
	url := srv.URL

	var stdout, stderr bytes.Buffer
	for _, d := range []string{"1", "2"} {
		stdout.Reset()
		args := []string{"-addr", url, "submit",
			"-terminals", "10", "-slots", "2000", "-shards", "2", "-d", d, "-wait"}
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("submit -d %s: %v", d, err)
		}
	}

	stdout.Reset()
	args := []string{"-addr", url, "query",
		"-where", "d <= 2", "-by", "d", "-agg", "count,mean(total_cost)"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("query: %v", err)
	}
	var resp results.Response
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		t.Fatalf("query output is not a response document: %v\n%s", err, stdout.String())
	}
	if resp.RowsScanned != 2 || resp.RowsMatched != 2 || len(resp.Groups) != 2 {
		t.Fatalf("query response: %s", stdout.String())
	}
	if want := []string{"count", "mean(total_cost)"}; resp.Aggregates[0] != want[0] ||
		resp.Aggregates[1] != want[1] {
		t.Fatalf("aggregate labels: %v", resp.Aggregates)
	}

	// Local validation rejects malformed queries before any HTTP.
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-addr", url, "query", "-where", "bogus"}, "not column OP value"},
		{[]string{"-addr", url, "query", "-where", "nope = 1"}, "valid columns:"},
		{[]string{"-addr", url, "query", "-by", "total_cost"}, "valid dimensions:"},
		{[]string{"-addr", url, "query", "-agg", "median(total_cost)"}, "valid ops:"},
		{[]string{"-addr", url, "query", "extra"}, "unexpected operand"},
	} {
		stdout.Reset()
		err := run(tc.args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %v, want substring %q", tc.args[2:], err, tc.want)
		}
	}
}
