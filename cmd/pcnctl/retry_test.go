package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/jobs"
)

// newRetryClient builds a client pointed at base with instant,
// recorded sleeps.
func newRetryClient(base string, retries int) (*client, *[]time.Duration) {
	var slept []time.Duration
	c := &client{
		base:      strings.TrimRight(base, "/"),
		retries:   retries,
		retryBase: 100 * time.Millisecond,
		sleep:     func(d time.Duration) { slept = append(slept, d) },
	}
	return c, &slept
}

func TestTransientClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"broken pipe", &net.OpError{Op: "write", Err: syscall.EPIPE}, true},
		{"eof", io.EOF, true},
		{"unexpected eof", fmt.Errorf("wrapped: %w", io.ErrUnexpectedEOF), true},
		{"plain error", errors.New("boom"), false},
		{"http status", &statusError{code: 429, msg: "too many"}, false},
	} {
		if got := transient(tc.err); got != tc.want {
			t.Errorf("transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestReattachableAcceptsRecoveryStatuses(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&statusError{code: 404, msg: "no such job"}, true},
		{&statusError{code: 503, msg: "recovering"}, true},
		{&statusError{code: 409, msg: "not done"}, false},
		{errStreamEnded, true},
		{fmt.Errorf("watch j000001: %w", errStreamEnded), true},
		{io.EOF, true},
		{errors.New("bad frame"), false},
	} {
		if got := reattachable(tc.err); got != tc.want {
			t.Errorf("reattachable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestBackoffJitterBounds: every sleep must land in [base<<n * 0.5,
// base<<n * 1.5) — exponential growth with jitter, never zero.
func TestBackoffJitterBounds(t *testing.T) {
	c, slept := newRetryClient("http://unused", 3)
	for attempt := 0; attempt < 4; attempt++ {
		c.backoff(attempt)
	}
	for attempt, d := range *slept {
		base := c.retryBase << uint(attempt)
		lo, hi := base/2, base+base/2
		if d < lo || d >= hi {
			t.Errorf("attempt %d slept %v, want [%v, %v)", attempt, d, lo, hi)
		}
	}
}

// TestDoRetriesConnectionRefused: a dead listener is retried exactly
// -retries times and still fails; each attempt backs off.
func TestDoRetriesConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	c, slept := newRetryClient(dead, 2)
	_, err = c.do("GET", "/api/v1/jobs", nil)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want connection refused", err)
	}
	if len(*slept) != 2 {
		t.Errorf("backed off %d times, want 2", len(*slept))
	}
}

// TestDoRecoversAfterDroppedConnections: the first two attempts are
// killed at the TCP level, the third succeeds — the caller sees only
// the success, with the full request body intact on the winning try.
func TestDoRecoversAfterDroppedConnections(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // mid-request drop: client sees EOF/reset
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	defer srv.Close()

	c, slept := newRetryClient(srv.URL, 4)
	// Disable keep-alives so each attempt dials fresh rather than
	// racing to reuse the connection the handler just killed.
	c.hc.Transport = &http.Transport{DisableKeepAlives: true}
	resp, err := c.do("POST", "/echo", []byte(`{"ping":true}`))
	if err != nil {
		t.Fatalf("do: %v (after %d backoffs)", err, len(*slept))
	}
	defer resp.Body.Close()
	echoed, _ := io.ReadAll(resp.Body)
	if string(echoed) != `{"ping":true}` {
		t.Errorf("retried request lost its body: %q", echoed)
	}
	if calls.Load() != 3 || len(*slept) != 2 {
		t.Errorf("calls = %d, backoffs = %d; want 3 and 2", calls.Load(), len(*slept))
	}
}

// TestFollowReattachesAcrossStreamDrops: the stream dies once without a
// result frame and 404s once (journal replay not finished), then
// delivers the result; follow must ride through both.
func TestFollowReattachesAcrossStreamDrops(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			// Attach succeeds, one state frame, then the server "dies".
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"type":"state","job":"j000001","state":"running"}`)
		case 2:
			// Restarted daemon, job table not rebuilt yet.
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such job j000001"}`)
		default:
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"type":"result","job":"j000001","state":"done"}`)
		}
	}))
	defer srv.Close()

	c, _ := newRetryClient(srv.URL, 4)
	var stderr strings.Builder
	state, err := c.follow("j000001", &stderr)
	if err != nil {
		t.Fatalf("follow: %v\nstderr: %s", err, stderr.String())
	}
	if state != jobs.StateDone {
		t.Errorf("state = %s, want done", state)
	}
	if calls.Load() != 3 {
		t.Errorf("stream attached %d times, want 3", calls.Load())
	}
	if !strings.Contains(stderr.String(), "reattaching") {
		t.Errorf("stderr never narrated the reattach: %s", stderr.String())
	}
}

// TestWatchReattachesDuringRedispatch drives watch through the stream
// lives a cluster coordinator produces: while a dead worker's slice is
// being re-dispatched (or the coordinator itself restarts and replays
// its journal), an open telemetry stream drops and fresh attaches can
// briefly answer 503. The reattach policy must ride those out, and must
// still fail fast on statuses that mean "the client is wrong".
func TestWatchReattachesDuringRedispatch(t *testing.T) {
	const progressLine = `{"type":"progress","job":"j000001","state":"running","terminal_slots":10,"total_terminal_slots":100}`
	const resultLine = `{"type":"result","job":"j000001","state":"done"}`
	type step struct {
		status int      // non-zero: fail the attach with this status
		lines  []string // otherwise: emit these frames, then drop
	}
	for _, tc := range []struct {
		name      string
		steps     []step
		retries   int
		wantCode  int // non-zero: expect a statusError with this code
		wantCalls int64
	}{
		{
			name: "503-during-redispatch",
			steps: []step{
				{lines: []string{progressLine}}, // attached, then the stream drops
				{status: 503},                   // coordinator busy re-leasing / recovering
				{lines: []string{progressLine, resultLine}},
			},
			retries: 4, wantCalls: 3,
		},
		{
			name:    "503-before-first-attach-fails-fast",
			steps:   []step{{status: 503}},
			retries: 4, wantCode: 503, wantCalls: 1,
		},
		{
			name: "retries-exhausted",
			steps: []step{
				{lines: []string{progressLine}},
				{status: 503},
				{status: 503},
			},
			retries: 2, wantCode: 503, wantCalls: 3,
		},
		{
			name: "client-error-mid-stream-not-reattachable",
			steps: []step{
				{lines: []string{progressLine}},
				{status: 409},
			},
			retries: 4, wantCode: 409, wantCalls: 2,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				i := calls.Add(1) - 1
				if i >= int64(len(tc.steps)) {
					t.Errorf("unexpected attach %d", i+1)
					w.WriteHeader(http.StatusTeapot)
					return
				}
				st := tc.steps[i]
				if st.status != 0 {
					w.WriteHeader(st.status)
					fmt.Fprintln(w, `{"error":"redispatching"}`)
					return
				}
				w.Header().Set("Content-Type", "application/x-ndjson")
				for _, line := range st.lines {
					fmt.Fprintln(w, line)
				}
			}))
			defer srv.Close()

			c, _ := newRetryClient(srv.URL, tc.retries)
			var stdout, stderr strings.Builder
			err := c.watch("j000001", &stdout, &stderr)
			if tc.wantCode != 0 {
				var se *statusError
				if !errors.As(err, &se) || se.code != tc.wantCode {
					t.Fatalf("err = %v, want a %d statusError", err, tc.wantCode)
				}
			} else {
				if err != nil {
					t.Fatalf("watch: %v\nstderr: %s", err, stderr.String())
				}
				if got := strings.Count(stdout.String(), `"type":"result"`); got != 1 {
					t.Errorf("stdout carries %d result frames, want 1:\n%s", got, stdout.String())
				}
				if !strings.Contains(stderr.String(), "reattaching") {
					t.Errorf("stderr never narrated the reattach: %s", stderr.String())
				}
			}
			if calls.Load() != tc.wantCalls {
				t.Errorf("stream attached %d times, want %d", calls.Load(), tc.wantCalls)
			}
		})
	}
}

// TestFollowDoesNotRetryMissingJobOnFirstAttach: a 404 before any
// successful attach is a real error, not a crash symptom.
func TestFollowDoesNotRetryMissingJobOnFirstAttach(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no such job j999999"}`)
	}))
	defer srv.Close()

	c, slept := newRetryClient(srv.URL, 4)
	var stderr strings.Builder
	_, err := c.follow("j999999", &stderr)
	var se *statusError
	if !errors.As(err, &se) || se.code != 404 {
		t.Fatalf("err = %v, want a 404 statusError", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Errorf("calls = %d, backoffs = %d; want 1 and 0", calls.Load(), len(*slept))
	}
}
