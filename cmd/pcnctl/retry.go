package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// Retry policy: a restarting pcnserve (crash recovery, rolling deploy)
// briefly refuses or resets connections; the CLI rides that out instead
// of failing the whole submit. Only connection-level failures are
// transient — HTTP-level errors mean the service is up and said no, and
// are surfaced immediately (except during stream reattach, see follow).

// transient reports whether an error is a connection-level failure
// worth retrying: the listener is not up yet (refused), the connection
// died mid-flight (reset, broken pipe, unexpected EOF), or a dial/read
// timed out.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// statusError is a non-2xx response from the service, preserved with
// its code so the stream-reattach path can distinguish "job not visible
// yet during journal replay" (404/503) from a real client error.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// backoff sleeps for retryBase<<attempt scaled by a uniform jitter in
// [0.5, 1.5), the standard defense against reconnect stampedes when
// many clients watch one restarting service.
func (c *client) backoff(attempt int) {
	d := c.retryBase << uint(attempt)
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	c.sleep(d)
}

// retrying runs fn up to 1+retries times, backing off between attempts,
// while shouldRetry accepts the failure.
func (c *client) retrying(shouldRetry func(error) bool, fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil || attempt >= c.retries || !shouldRetry(err) {
			return err
		}
		c.backoff(attempt)
	}
}

// reattachable classifies stream-drop errors for follow: beyond plain
// connection failures, a 404 or 503 counts once the stream had been
// attached — a freshly restarted daemon returns those while journal
// replay is still rebuilding the job table.
func reattachable(err error) bool {
	if transient(err) || errors.Is(err, errStreamEnded) {
		return true
	}
	var se *statusError
	return errors.As(err, &se) && (se.code == 404 || se.code == 503)
}

// errStreamEnded marks a stream that closed cleanly without a result
// frame — what a draining or dying server leaves behind.
var errStreamEnded = fmt.Errorf("stream ended without a result frame")
