package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation is the table-driven error-path coverage for the
// CLI surface: every rejected flag must fail with a message naming it.
func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown model", []string{"-model", "3d"}, "unknown model"},
		{"unknown method", []string{"-method", "magic"}, "unknown method"},
		{"unknown scheme", []string{"-scheme", "psychic"}, "psychic"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"bad probability", []string{"-q", "1.5", "-c", "0.6"}, "q"},
		{"map on 1d", []string{"-model", "1d", "-q", "0.1", "-c", "0.05",
			"-m", "2", "-maxd", "5", "-map", "out.svg"}, "2-D"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &strings.Builder{})
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunGolden pins the full text report of a small deterministic
// optimization — the analytical pipeline is exact, so every digit is
// stable.
func TestRunGolden(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-model", "1d", "-q", "0.1", "-c", "0.05",
		"-U", "10", "-V", "1", "-m", "2", "-maxd", "10"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	want := `model           1d
q, c            0.1, 0.05
U, V            10, 1
max delay       2 polling cycles
partition       sdf
optimal d*      3
update cost     0.022222 per slot
paging cost     0.185556 per slot
total cost      0.207778 per slot
expected delay  1.178 cycles (worst case 2)
evaluations     11
`
	if b.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestRunCurveMarksOptimum checks -curve prints the scanned curve with
// the optimum marked.
func TestRunCurveMarksOptimum(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-model", "1d", "-q", "0.1", "-c", "0.05",
		"-U", "10", "-V", "1", "-m", "2", "-maxd", "10", "-curve"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "d  C_T(d)") {
		t.Fatal("curve header missing")
	}
	if !strings.Contains(out, "<-- d*") {
		t.Error("optimum not marked on the curve")
	}
}

// TestRunWritesMap checks the -map path produces an SVG document.
func TestRunWritesMap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.svg")
	var b strings.Builder
	err := run([]string{"-q", "0.1", "-c", "0.05", "-U", "10", "-V", "1",
		"-m", "2", "-maxd", "5", "-map", path}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("map output is not an SVG document")
	}
	if !strings.Contains(b.String(), "paging plan map written") {
		t.Error("map confirmation line missing")
	}
}
