// Command locopt computes the optimal location-update threshold distance
// for a mobile terminal under the delay-constrained paging mechanism:
//
//	locopt -model 2d -q 0.05 -c 0.01 -U 100 -V 10 -m 3
//
// It prints the optimal threshold d*, the cost breakdown, the expected
// paging delay, and optionally the whole cost curve (-curve). The
// optimization method is selectable: exhaustive scan (default), the
// paper's simulated annealing (-method anneal) or the cheap near-optimal
// closed-form pipeline (-method near).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/svgplot"
	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locopt: ")

	model := flag.String("model", "2d", "mobility model: 1d, 2d or 2d-approx")
	q := flag.Float64("q", 0.05, "per-slot movement probability")
	c := flag.Float64("c", 0.01, "per-slot call-arrival probability")
	u := flag.Float64("U", 100, "location-update cost")
	v := flag.Float64("V", 10, "per-cell polling cost")
	m := flag.Int("m", 0, "maximum paging delay in polling cycles (0 = unbounded)")
	maxD := flag.Int("maxd", 0, "scan bound for the threshold (0 = default 200)")
	schemeName := flag.String("scheme", "sdf", "paging partition: sdf, blanket, per-ring, equal-cells, optimal-dp")
	method := flag.String("method", "scan", "optimizer: scan, anneal, near, grouped or mean-delay")
	meanDelay := flag.Float64("mean-delay", 1.5, "expected-delay budget in cycles for -method mean-delay")
	seed := flag.Int64("seed", 1, "random seed for -method anneal")
	curve := flag.Bool("curve", false, "print the full cost curve C_T(d)")
	mapOut := flag.String("map", "", "write an SVG map of the optimal residing-area paging plan (2-D models)")
	flag.Parse()

	var mdl locman.Model
	switch *model {
	case "1d":
		mdl = locman.OneDimensional
	case "2d":
		mdl = locman.TwoDimensional
	case "2d-approx":
		mdl = locman.TwoDimensionalApprox
	default:
		log.Fatalf("unknown model %q (want 1d, 2d or 2d-approx)", *model)
	}
	scheme, err := locman.PartitionByName(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := locman.Config{
		Model:        mdl,
		MoveProb:     *q,
		CallProb:     *c,
		UpdateCost:   *u,
		PollCost:     *v,
		MaxDelay:     *m,
		MaxThreshold: *maxD,
		Partition:    scheme,
	}

	var res locman.Result
	switch *method {
	case "scan":
		res, err = locman.Optimize(cfg)
	case "anneal":
		res, err = locman.OptimizeAnneal(cfg, locman.AnnealOptions{Seed: *seed})
	case "near":
		res, err = locman.NearOptimal(cfg, true)
	case "grouped":
		res, err = locman.OptimizeGrouped(cfg)
	case "mean-delay":
		res, err = locman.OptimizeMeanDelay(cfg, *meanDelay)
	default:
		log.Fatalf("unknown method %q (want scan, anneal, near, grouped or mean-delay)", *method)
	}
	if err != nil {
		log.Fatal(err)
	}

	b := res.Best
	fmt.Printf("model           %s\n", *model)
	fmt.Printf("q, c            %g, %g\n", *q, *c)
	fmt.Printf("U, V            %g, %g\n", *u, *v)
	if *m == 0 {
		fmt.Printf("max delay       unbounded\n")
	} else {
		fmt.Printf("max delay       %d polling cycles\n", *m)
	}
	fmt.Printf("partition       %s\n", scheme.Name())
	fmt.Printf("optimal d*      %d\n", b.Threshold)
	fmt.Printf("update cost     %.6f per slot\n", b.Update)
	fmt.Printf("paging cost     %.6f per slot\n", b.Paging)
	fmt.Printf("total cost      %.6f per slot\n", b.Total)
	fmt.Printf("expected delay  %.3f cycles (worst case %d)\n", b.ExpectedDelay, b.MaxCycles)
	fmt.Printf("evaluations     %d\n", res.Evaluations)

	if *curve && res.Curve != nil {
		fmt.Println("\nd  C_T(d)")
		for d, v := range res.Curve {
			marker := ""
			if d == b.Threshold {
				marker = "  <-- d*"
			}
			fmt.Fprintf(os.Stdout, "%-3d%.6f%s\n", d, v, marker)
		}
	}

	if *mapOut != "" {
		if mdl == locman.OneDimensional {
			log.Fatal("-map requires a 2-D model")
		}
		mcfg := cfg
		mcfg.MaxDelay = b.MaxCycles // the plan actually chosen
		rc, err := locman.RingCycles(mcfg, b.Threshold)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*mapOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		title := fmt.Sprintf("residing area d=%d, %d polling cycles (%s)", b.Threshold, b.MaxCycles, scheme.Name())
		if err := svgplot.HexMap(f, title, b.Threshold, rc); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npaging plan map written to %s\n", *mapOut)
	}
}
