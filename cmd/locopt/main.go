// Command locopt computes the optimal location-update threshold distance
// for a mobile terminal under the delay-constrained paging mechanism:
//
//	locopt -model 2d -q 0.05 -c 0.01 -U 100 -V 10 -m 3
//
// It prints the optimal threshold d*, the cost breakdown, the expected
// paging delay, and optionally the whole cost curve (-curve). The
// optimization method is selectable: exhaustive scan (default), the
// paper's simulated annealing (-method anneal) or the cheap near-optimal
// closed-form pipeline (-method near).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/svgplot"
	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locopt: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process scaffolding, so tests can drive the full
// flag-to-output path in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("locopt", flag.ContinueOnError)
	model := fs.String("model", "2d", "mobility model: 1d, 2d or 2d-approx")
	q := fs.Float64("q", 0.05, "per-slot movement probability")
	c := fs.Float64("c", 0.01, "per-slot call-arrival probability")
	u := fs.Float64("U", 100, "location-update cost")
	v := fs.Float64("V", 10, "per-cell polling cost")
	m := fs.Int("m", 0, "maximum paging delay in polling cycles (0 = unbounded)")
	maxD := fs.Int("maxd", 0, "scan bound for the threshold (0 = default 200)")
	schemeName := fs.String("scheme", "sdf",
		"paging partition: "+strings.Join(locman.PartitionNames(), ", "))
	method := fs.String("method", "scan", "optimizer: scan, anneal, near, grouped or mean-delay")
	meanDelay := fs.Float64("mean-delay", 1.5, "expected-delay budget in cycles for -method mean-delay")
	seed := fs.Int64("seed", 1, "random seed for -method anneal")
	curve := fs.Bool("curve", false, "print the full cost curve C_T(d)")
	mapOut := fs.String("map", "", "write an SVG map of the optimal residing-area paging plan (2-D models)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var mdl locman.Model
	switch *model {
	case "1d":
		mdl = locman.OneDimensional
	case "2d":
		mdl = locman.TwoDimensional
	case "2d-approx":
		mdl = locman.TwoDimensionalApprox
	default:
		return fmt.Errorf("unknown model %q (want 1d, 2d or 2d-approx)", *model)
	}
	scheme, err := locman.PartitionByName(*schemeName)
	if err != nil {
		return fmt.Errorf("-scheme: %w", err)
	}
	cfg := locman.Config{
		Model:        mdl,
		MoveProb:     *q,
		CallProb:     *c,
		UpdateCost:   *u,
		PollCost:     *v,
		MaxDelay:     *m,
		MaxThreshold: *maxD,
		Partition:    scheme,
	}

	var res locman.Result
	switch *method {
	case "scan":
		res, err = locman.Optimize(cfg)
	case "anneal":
		res, err = locman.OptimizeAnneal(cfg, locman.AnnealOptions{Seed: *seed})
	case "near":
		res, err = locman.NearOptimal(cfg, true)
	case "grouped":
		res, err = locman.OptimizeGrouped(cfg)
	case "mean-delay":
		res, err = locman.OptimizeMeanDelay(cfg, *meanDelay)
	default:
		return fmt.Errorf("unknown method %q (want scan, anneal, near, grouped or mean-delay)", *method)
	}
	if err != nil {
		return err
	}

	b := res.Best
	fmt.Fprintf(stdout, "model           %s\n", *model)
	fmt.Fprintf(stdout, "q, c            %g, %g\n", *q, *c)
	fmt.Fprintf(stdout, "U, V            %g, %g\n", *u, *v)
	if *m == 0 {
		fmt.Fprintf(stdout, "max delay       unbounded\n")
	} else {
		fmt.Fprintf(stdout, "max delay       %d polling cycles\n", *m)
	}
	fmt.Fprintf(stdout, "partition       %s\n", scheme.Name())
	fmt.Fprintf(stdout, "optimal d*      %d\n", b.Threshold)
	fmt.Fprintf(stdout, "update cost     %.6f per slot\n", b.Update)
	fmt.Fprintf(stdout, "paging cost     %.6f per slot\n", b.Paging)
	fmt.Fprintf(stdout, "total cost      %.6f per slot\n", b.Total)
	fmt.Fprintf(stdout, "expected delay  %.3f cycles (worst case %d)\n", b.ExpectedDelay, b.MaxCycles)
	fmt.Fprintf(stdout, "evaluations     %d\n", res.Evaluations)

	if *curve && res.Curve != nil {
		fmt.Fprintln(stdout, "\nd  C_T(d)")
		for d, v := range res.Curve {
			marker := ""
			if d == b.Threshold {
				marker = "  <-- d*"
			}
			fmt.Fprintf(stdout, "%-3d%.6f%s\n", d, v, marker)
		}
	}

	if *mapOut != "" {
		if mdl == locman.OneDimensional {
			return fmt.Errorf("-map requires a 2-D model")
		}
		mcfg := cfg
		mcfg.MaxDelay = b.MaxCycles // the plan actually chosen
		rc, err := locman.RingCycles(mcfg, b.Threshold)
		if err != nil {
			return err
		}
		f, err := os.Create(*mapOut)
		if err != nil {
			return err
		}
		defer f.Close()
		title := fmt.Sprintf("residing area d=%d, %d polling cycles (%s)", b.Threshold, b.MaxCycles, scheme.Name())
		if err := svgplot.HexMap(f, title, b.Threshold, rc); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\npaging plan map written to %s\n", *mapOut)
	}
	return nil
}
