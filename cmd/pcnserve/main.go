// Command pcnserve is the long-running simulation job service: it
// accepts PCN simulation jobs over an HTTP/JSON API, runs them on a
// bounded worker pool backed by the sharded engines, streams telemetry
// while they run, and exposes the operational endpoints a deployment
// needs (/healthz, /readyz, Prometheus-text /metrics).
//
//	pcnserve -addr :8080 -workers 4 -queue 64
//
// Jobs are deterministic: a job submitted with a given seed and shard
// count produces a final report byte-identical to running pcnsim -json
// with the same configuration. On SIGTERM/SIGINT the daemon flips
// /readyz to draining, stops accepting jobs, cancels what is still
// queued or running once the drain timeout expires, and exits.
//
// With -data-dir the service is crash-safe: every job lifecycle event
// is appended to a checksummed journal, and with -checkpoint-every N
// running jobs periodically persist resumable engine checkpoints. After
// a crash (even SIGKILL) a restart replays the journal, restores
// completed results byte-for-byte, re-enqueues interrupted jobs, and
// resumes them from their last checkpoint — the final report is still
// byte-identical to an uninterrupted run.
//
// Cluster mode distributes single jobs across machines while keeping
// the same byte-identity guarantee:
//
//	pcnserve -coordinator -addr :8080
//	pcnserve -worker -join http://coord:8080 -advertise http://me:8081 -addr :8081
//
// A coordinator accepts ordinary job submissions, slices each job's
// shard partition across the registered workers, and merges their
// partial results into a report byte-identical to a single-node run —
// including when a worker dies mid-job (its slice is re-leased).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/results"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent simulation jobs (each job additionally shards across cores)")
	queue := flag.Int("queue", 64,
		"bounded submission queue depth; submissions beyond it are rejected with 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for queued and running jobs before cancelling them")
	streamInterval := flag.Duration("stream-interval", 500*time.Millisecond,
		"cadence of progress frames on job NDJSON streams")
	dataDir := flag.String("data-dir", "",
		"directory for the durable job journal and run checkpoints; empty disables durability")
	checkpointEvery := flag.Int64("checkpoint-every", 0,
		"persist a resumable checkpoint every N simulated slots per running job (requires -data-dir; 0 disables)")
	coordinator := flag.Bool("coordinator", false,
		"run as cluster coordinator: accept jobs and fan their shards out to registered workers")
	worker := flag.Bool("worker", false,
		"run as cluster worker: serve shard-slice leases from a coordinator (requires -join and -advertise)")
	join := flag.String("join", "",
		"coordinator base URL a worker registers with, e.g. http://coord:8080")
	advertise := flag.String("advertise", "",
		"base URL at which the coordinator can reach this worker, e.g. http://me:8081")
	heartbeatEvery := flag.Duration("heartbeat-every", cluster.DefaultHeartbeatEvery,
		"worker heartbeat cadence")
	leaseTimeout := flag.Duration("lease-timeout", cluster.DefaultLeaseTimeout,
		"coordinator declares a slice lease dead after this much stream silence and re-leases it")
	flag.Parse()

	if *workers <= 0 {
		log.Fatalf("-workers must be positive, got %d", *workers)
	}
	if *queue <= 0 {
		log.Fatalf("-queue must be positive, got %d", *queue)
	}
	if *drainTimeout <= 0 {
		log.Fatalf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *checkpointEvery < 0 {
		log.Fatalf("-checkpoint-every must be non-negative, got %d", *checkpointEvery)
	}
	if *checkpointEvery > 0 && *dataDir == "" {
		log.Fatal("-checkpoint-every requires -data-dir")
	}
	if *coordinator && *worker {
		log.Fatal("-coordinator and -worker are mutually exclusive")
	}
	if *worker && (*join == "" || *advertise == "") {
		log.Fatal("-worker requires -join and -advertise")
	}
	if !*worker && (*join != "" || *advertise != "") {
		log.Fatal("-join and -advertise only apply with -worker")
	}
	if *coordinator && *checkpointEvery > 0 {
		// Distributed runs have no local engine to checkpoint; recovery
		// re-dispatches interrupted jobs from slot 0.
		log.Fatal("-checkpoint-every does not apply with -coordinator")
	}

	// The analytics table: every done job flattens into it and POST
	// /query answers from it. With -data-dir the table itself persists
	// beside the journal (and loads back instantly on restart); the
	// journal replay below backfills whatever the table file lacks.
	store := results.NewStore()
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
		var err error
		store, err = results.Open(filepath.Join(*dataDir, "results.table.json"))
		if err != nil {
			log.Fatalf("results table: %v", err)
		}
	}

	// Cluster roles. The coordinator plugs into the manager as its
	// Runner, so the whole job lifecycle (queue, journal, results,
	// byte-identical reports) is unchanged — only the simulate step fans
	// out. A worker is a plain daemon plus the slice lease endpoint; it
	// registers and heartbeats in the background.
	var coord *cluster.Coordinator
	var wrk *cluster.Worker
	if *coordinator {
		coord = cluster.NewCoordinator(cluster.NewRegistry(0, nil),
			cluster.Options{LeaseTimeout: *leaseTimeout})
	}
	if *worker {
		var err error
		wrk, err = cluster.NewWorker(cluster.WorkerOptions{
			Join: *join, Advertise: *advertise, HeartbeatEvery: *heartbeatEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	mgrOpts := jobs.Options{
		QueueDepth:      *queue,
		Workers:         *workers,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		Results:         store,
	}
	if coord != nil {
		mgrOpts.Runner = coord
	}
	mgr := jobs.New(mgrOpts)
	srv := server.New(mgr, server.Options{
		StreamInterval: *streamInterval,
		Results:        store,
		Cluster:        coord,
		Worker:         wrk,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("serving on http://%s (%d workers, queue depth %d)",
		ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// A worker joins its coordinator in the background: registration
	// retries until the coordinator is reachable, then heartbeats keep
	// the node alive (re-registering after a coordinator restart).
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	if wrk != nil {
		go func() { _ = wrk.Run(workerCtx) }()
		log.Printf("worker joining %s as %s", *join, *advertise)
	}

	// Journal replay happens after the listener is up so a restarting
	// daemon answers /readyz ("recovering", 503) and /metrics from the
	// first moment; workers start only once the replay has re-enqueued
	// every interrupted job.
	if *dataDir != "" {
		start := time.Now()
		if err := mgr.Recover(); err != nil {
			log.Fatalf("journal recovery: %v", err)
		}
		st := mgr.Stats()
		log.Printf("recovered journal in %v: %d records replayed, %d jobs re-enqueued, %d analytics rows backfilled (%d in table)",
			time.Since(start).Round(time.Millisecond), st.ReplayedRecords, st.RecoveredJobs,
			st.ResultsBackfilled, st.ResultRows)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("received %s, draining (timeout %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatal(err)
	}

	// Graceful shutdown: flip readiness first so load balancers stop
	// routing, then drain the job queue (cancelling leftovers at the
	// deadline), then close the listener once in-flight responses finish.
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("drain timeout expired, cancelled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("shutdown complete")
}
