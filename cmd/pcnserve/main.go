// Command pcnserve is the long-running simulation job service: it
// accepts PCN simulation jobs over an HTTP/JSON API, runs them on a
// bounded worker pool backed by the sharded engines, streams telemetry
// while they run, and exposes the operational endpoints a deployment
// needs (/healthz, /readyz, Prometheus-text /metrics).
//
//	pcnserve -addr :8080 -workers 4 -queue 64
//
// Jobs are deterministic: a job submitted with a given seed and shard
// count produces a final report byte-identical to running pcnsim -json
// with the same configuration. On SIGTERM/SIGINT the daemon flips
// /readyz to draining, stops accepting jobs, cancels what is still
// queued or running once the drain timeout expires, and exits.
//
// With -data-dir the service is crash-safe: every job lifecycle event
// is appended to a checksummed journal, and with -checkpoint-every N
// running jobs periodically persist resumable engine checkpoints. After
// a crash (even SIGKILL) a restart replays the journal, restores
// completed results byte-for-byte, re-enqueues interrupted jobs, and
// resumes them from their last checkpoint — the final report is still
// byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/results"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent simulation jobs (each job additionally shards across cores)")
	queue := flag.Int("queue", 64,
		"bounded submission queue depth; submissions beyond it are rejected with 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for queued and running jobs before cancelling them")
	streamInterval := flag.Duration("stream-interval", 500*time.Millisecond,
		"cadence of progress frames on job NDJSON streams")
	dataDir := flag.String("data-dir", "",
		"directory for the durable job journal and run checkpoints; empty disables durability")
	checkpointEvery := flag.Int64("checkpoint-every", 0,
		"persist a resumable checkpoint every N simulated slots per running job (requires -data-dir; 0 disables)")
	flag.Parse()

	if *workers <= 0 {
		log.Fatalf("-workers must be positive, got %d", *workers)
	}
	if *queue <= 0 {
		log.Fatalf("-queue must be positive, got %d", *queue)
	}
	if *drainTimeout <= 0 {
		log.Fatalf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *checkpointEvery < 0 {
		log.Fatalf("-checkpoint-every must be non-negative, got %d", *checkpointEvery)
	}
	if *checkpointEvery > 0 && *dataDir == "" {
		log.Fatal("-checkpoint-every requires -data-dir")
	}

	// The analytics table: every done job flattens into it and POST
	// /query answers from it. With -data-dir the table itself persists
	// beside the journal (and loads back instantly on restart); the
	// journal replay below backfills whatever the table file lacks.
	store := results.NewStore()
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
		var err error
		store, err = results.Open(filepath.Join(*dataDir, "results.table.json"))
		if err != nil {
			log.Fatalf("results table: %v", err)
		}
	}

	mgr := jobs.New(jobs.Options{
		QueueDepth:      *queue,
		Workers:         *workers,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		Results:         store,
	})
	srv := server.New(mgr, server.Options{StreamInterval: *streamInterval, Results: store})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("serving on http://%s (%d workers, queue depth %d)",
		ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// Journal replay happens after the listener is up so a restarting
	// daemon answers /readyz ("recovering", 503) and /metrics from the
	// first moment; workers start only once the replay has re-enqueued
	// every interrupted job.
	if *dataDir != "" {
		start := time.Now()
		if err := mgr.Recover(); err != nil {
			log.Fatalf("journal recovery: %v", err)
		}
		st := mgr.Stats()
		log.Printf("recovered journal in %v: %d records replayed, %d jobs re-enqueued, %d analytics rows backfilled (%d in table)",
			time.Since(start).Round(time.Millisecond), st.ReplayedRecords, st.RecoveredJobs,
			st.ResultsBackfilled, st.ResultRows)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("received %s, draining (timeout %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatal(err)
	}

	// Graceful shutdown: flip readiness first so load balancers stop
	// routing, then drain the job queue (cancelling leftovers at the
	// deadline), then close the listener once in-flight responses finish.
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("drain timeout expired, cancelled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("shutdown complete")
}
