// Highway: one-dimensional location management for terminals confined to a
// road, rail line or tunnel — the paper's motivating scenario for the 1-D
// model. Compares the paper's mechanism against the classic baselines
// (static location areas, time-based and movement-based updating) on an
// identical simulated workload, each baseline at its own best parameter.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"
	"math"

	"repro/locman"
)

func main() {
	log.SetFlags(0)

	// A vehicle on a highway of small cells: moves often, called rarely.
	cfg := locman.Config{
		Model:      locman.OneDimensional,
		MoveProb:   0.2,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   2,
	}

	res, err := locman.Optimize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distance-based (this paper): d* = %d, analytical C_T = %.3f, E[delay] = %.2f cycles\n\n",
		res.Best.Threshold, res.Best.Total, res.Best.ExpectedDelay)

	const slots = 1_000_000
	const seed = 17

	type contender struct {
		name    string
		scheme  locman.BaselineScheme
		cfg     locman.Config
		loParam int
		hiParam int
	}
	unbounded := cfg
	unbounded.MaxDelay = locman.Unbounded
	contenders := []contender{
		// The paper's mechanism under its m=2 delay guarantee, and the
		// same trigger with unconstrained paging (= Madhow et al. [6]).
		{"distance-based, m=2 (ours)", locman.BaselineDistanceBased, cfg, 0, 15},
		{"distance-based, unbounded [6]", locman.BaselineDistanceBased, unbounded, 0, 15},
		// The classic baselines all page without a delay guarantee
		// (except LA, which blanket-polls in exactly one cycle).
		{"location-area [8]", locman.BaselineLA, cfg, 1, 30},
		{"time-based [3]", locman.BaselineTimeBased, cfg, 1, 120},
		{"movement-based [3]", locman.BaselineMovementBased, cfg, 1, 40},
	}

	fmt.Println("scheme                          best-param  cost     vs ours  mean-delay  delay-bound")
	var ours float64
	for i, c := range contenders {
		bestParam, bestCost := 0, math.Inf(1)
		var bestDelay float64
		for p := c.loParam; p <= c.hiParam; p++ {
			r, err := locman.SimulateBaseline(c.cfg, c.scheme, p, slots, seed)
			if err != nil {
				log.Fatal(err)
			}
			if r.TotalCost < bestCost {
				bestParam, bestCost = p, r.TotalCost
				bestDelay = r.Delay.Mean()
			}
		}
		if i == 0 {
			ours = bestCost
		}
		bound := "none"
		switch {
		case c.scheme == locman.BaselineLA:
			bound = "1 cycle"
		case c.scheme == locman.BaselineDistanceBased && c.cfg.MaxDelay > 0:
			bound = fmt.Sprintf("%d cycles", c.cfg.MaxDelay)
		}
		fmt.Printf("%-31s %-11d %-8.3f %+7.1f%%  %-11.2f %s\n",
			c.name, bestParam, bestCost, 100*(bestCost-ours)/ours, bestDelay, bound)
	}

	fmt.Println("\nOnly the first two rows guarantee anything about paging delay. The")
	fmt.Println("time- and movement-based baselines pay less only by searching an")
	fmt.Println("unboundedly large area ring by ring; against the fair comparison —")
	fmt.Println("distance-based with unbounded paging [6] — the distance trigger wins,")
	fmt.Println("and the paper's contribution is keeping most of that advantage while")
	fmt.Println("bounding the delay.")
}
