// Citywide: per-user location management in a 2-D metropolitan PCN.
//
// The paper's conclusions note that its results can drive "dynamic schemes
// such that [the] location update threshold distance is determined
// continuously on a per-user basis". This example shows why that matters:
// a city mixes user profiles whose optimal thresholds differ widely, and a
// single network-wide threshold overpays for everyone. It then runs the
// discrete-event PCN simulator with online per-terminal estimation and
// shows the dynamic scheme approaching the per-profile optimum without
// knowing the profiles a priori.
//
//	go run ./examples/citywide
package main

import (
	"fmt"
	"log"

	"repro/locman"
)

type profile struct {
	name     string
	moveProb float64
	callProb float64
}

var profiles = []profile{
	{"office worker (mostly parked)", 0.01, 0.02},
	{"pedestrian", 0.05, 0.01},
	{"courier (always moving)", 0.30, 0.01},
	{"taxi (moving, chatty)", 0.25, 0.05},
}

func main() {
	log.SetFlags(0)

	base := locman.Config{
		Model:      locman.TwoDimensional,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   2,
	}

	// Per-profile optima.
	fmt.Println("profile                          d*   C_T     E[delay]")
	var avgQ, avgC float64
	for _, p := range profiles {
		cfg := base
		cfg.MoveProb, cfg.CallProb = p.moveProb, p.callProb
		res, err := locman.Optimize(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %-4d %-7.3f %.2f\n",
			p.name, res.Best.Threshold, res.Best.Total, res.Best.ExpectedDelay)
		avgQ += p.moveProb / float64(len(profiles))
		avgC += p.callProb / float64(len(profiles))
	}

	// What a one-size-fits-all network threshold costs: pick the optimum
	// for the average user and price every profile at it.
	avgCfg := base
	avgCfg.MoveProb, avgCfg.CallProb = avgQ, avgC
	avgRes, err := locman.Optimize(avgCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork-wide threshold from average user (q=%.3f, c=%.3f): d = %d\n",
		avgQ, avgC, avgRes.Best.Threshold)
	var lossTotal float64
	for _, p := range profiles {
		cfg := base
		cfg.MoveProb, cfg.CallProb = p.moveProb, p.callProb
		own, err := locman.Optimize(cfg)
		if err != nil {
			log.Fatal(err)
		}
		forced, err := locman.Evaluate(cfg, avgRes.Best.Threshold)
		if err != nil {
			log.Fatal(err)
		}
		loss := 100 * (forced.Total - own.Best.Total) / own.Best.Total
		lossTotal += loss
		fmt.Printf("  %-32s pays %.3f instead of %.3f (+%.1f%%)\n",
			p.name, forced.Total, own.Best.Total, loss)
	}
	fmt.Printf("average overpayment: %.1f%%\n", lossTotal/float64(len(profiles)))

	// The dynamic per-user scheme, end to end: the simulated network does
	// not know who is who; each terminal estimates its own (q, c) and
	// re-optimizes periodically using the near-optimal closed form.
	fmt.Println("\nrunning the PCN simulator with per-terminal dynamic thresholds...")
	cfg := locman.NetworkConfig{
		Config:    avgCfg,
		Terminals: len(profiles) * 4,
		Threshold: avgRes.Best.Threshold,
		Dynamic:   true,
		Seed:      7,
		PerTerminal: func(i int) (float64, float64) {
			p := profiles[i%len(profiles)]
			return p.moveProb, p.callProb
		},
	}
	metrics, err := locman.SimulateNetwork(cfg, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic: total cost %.3f per slot per terminal, mean delay %.2f cycles, %d paging failures\n",
		metrics.TotalCost, metrics.Delay.Mean(), metrics.NotFound)

	// Per-profile realized costs and where each terminal's threshold
	// converged — the per-user adaptation at work.
	for pi, p := range profiles {
		var cost float64
		var n int
		finals := map[int]int{}
		for ti, ts := range metrics.PerTerminal {
			if ti%len(profiles) != pi {
				continue
			}
			cost += ts.TotalCost
			finals[ts.FinalThreshold]++
			n++
		}
		fmt.Printf("  %-32s realized %.3f/slot, final thresholds %v\n",
			p.name, cost/float64(n), finals)
	}

	static := cfg
	static.Dynamic = false
	staticMetrics, err := locman.SimulateNetwork(static, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static network-wide d=%d: total cost %.3f per slot per terminal\n",
		avgRes.Best.Threshold, staticMetrics.TotalCost)
	fmt.Printf("dynamic saves %.1f%% over the static network-wide threshold\n",
		100*(staticMetrics.TotalCost-metrics.TotalCost)/staticMetrics.TotalCost)
}
