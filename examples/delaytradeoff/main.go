// Delaytradeoff: how much paging delay buys how much cost — the paper's
// central question. Sweeps the maximum paging delay m from 1 polling cycle
// to unbounded and reports the optimal threshold and cost at each bound,
// quantifying the paper's headline observation that going from m=1 to m=2
// recovers about half the gap to the unconstrained optimum. Also compares
// the paper's SDF partitioning against the DP-optimal partitioner at each
// bound (the paper's future-work item).
//
//	go run ./examples/delaytradeoff
package main

import (
	"fmt"
	"log"

	"repro/locman"
)

func main() {
	log.SetFlags(0)

	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 300,
		PollCost:   10,
	}

	optimalAt := func(m int, p locman.Partition) locman.Breakdown {
		c := cfg
		c.MaxDelay = m
		c.Partition = p
		res, err := locman.Optimize(c)
		if err != nil {
			log.Fatal(err)
		}
		return res.Best
	}

	unbounded := optimalAt(locman.Unbounded, nil)
	atOne := optimalAt(1, nil)

	fmt.Printf("workload: 2-D, q=%.2f c=%.2f U=%.0f V=%.0f\n", cfg.MoveProb, cfg.CallProb, cfg.UpdateCost, cfg.PollCost)
	fmt.Printf("cost with no delay tolerance  (m=1): %.3f at d*=%d\n", atOne.Total, atOne.Threshold)
	fmt.Printf("cost with unbounded delay          : %.3f at d*=%d\n\n", unbounded.Total, unbounded.Threshold)

	fmt.Println("m          d*  C_T(SDF)  gap-closed  E[delay]  C_T(optimal-dp)")
	for m := 1; m <= 8; m++ {
		sdf := optimalAt(m, nil)
		dp := optimalAt(m, locman.OptimalDP())
		closed := 0.0
		if atOne.Total != unbounded.Total {
			closed = 100 * (atOne.Total - sdf.Total) / (atOne.Total - unbounded.Total)
		}
		fmt.Printf("%-10d %-3d %-9.3f %5.1f%%      %-9.2f %.3f\n",
			m, sdf.Threshold, sdf.Total, closed, sdf.ExpectedDelay, dp.Total)
	}
	inf := optimalAt(locman.Unbounded, nil)
	fmt.Printf("%-10s %-3d %-9.3f %5.1f%%      %-9.2f\n",
		"unbounded", inf.Threshold, inf.Total, 100.0, inf.ExpectedDelay)

	two := optimalAt(2, nil)
	fmt.Printf("\npaper's observation: m=2 closes %.0f%% of the m=1 → unbounded gap\n",
		100*(atOne.Total-two.Total)/(atOne.Total-unbounded.Total))
	fmt.Println("(\"a small increase of the maximum delay from 1 to 2 polling cycles can")
	fmt.Println(" lower the optimal cost to half way between its values when the maximum")
	fmt.Println(" delays are 1 and ∞\" — Section 8)")
}
