// Quickstart: find the optimal location-update threshold for a typical
// 2-D PCN terminal and inspect the cost trade-off.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/locman"
)

func main() {
	log.SetFlags(0)

	// A pedestrian terminal: moves to a neighboring cell in 5% of time
	// slots, receives a call in 1% of them. Updating the network costs
	// 100 units; polling one cell costs 10. The network must locate the
	// terminal within 3 polling cycles.
	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
	}

	res, err := locman.Optimize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal threshold d* = %d\n", res.Best.Threshold)
	fmt.Printf("total cost           = %.3f per slot (update %.3f + paging %.3f)\n",
		res.Best.Total, res.Best.Update, res.Best.Paging)
	fmt.Printf("expected paging delay = %.2f cycles (bound %d)\n\n",
		res.Best.ExpectedDelay, res.Best.MaxCycles)

	// The trade-off the mechanism optimizes: small thresholds update too
	// often, large ones page too much.
	fmt.Println("d    C_T(d)")
	for d := 0; d <= 6; d++ {
		b, err := locman.Evaluate(cfg, d)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if d == res.Best.Threshold {
			marker = "   <-- optimal"
		}
		fmt.Printf("%-4d %.3f%s\n", d, b.Total, marker)
	}

	// Validate the analysis against a Monte-Carlo run on the real
	// hexagonal grid.
	simres, err := locman.SimulateWalk(cfg, res.Best.Threshold, 1_000_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated cost over 1M slots = %.3f (analysis %.3f)\n",
		simres.TotalCost, res.Best.Total)
}
