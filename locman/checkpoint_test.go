package locman

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// checkpointConfig is a deliberately hostile run for checkpoint/resume:
// dynamic thresholds with heterogeneous per-terminal parameters, every
// fault knob on (so retransmission timers are routinely pending across
// slot boundaries — the one event species a checkpoint must serialize),
// and a telemetry cadence that divides neither the run length nor the
// checkpoint cadence, so frame and checkpoint boundaries interleave
// mid-batch for the batched engines.
func checkpointConfig(engine Engine) NetworkConfig {
	return NetworkConfig{
		Config: Config{
			Model:      TwoDimensional,
			MoveProb:   0.2,
			CallProb:   0.04,
			UpdateCost: 50,
			PollCost:   1,
			MaxDelay:   3,
		},
		Terminals: 9,
		Threshold: 2,
		Dynamic:   true,
		Faults: FaultPlan{
			UpdateLoss:    0.25,
			PollLoss:      0.15,
			ReplyLoss:     0.1,
			UpdateRetries: 2,
			PageRetries:   3,
			Outages:       []Outage{{Start: 300, End: 450}, {Start: 1_200, End: 1_350}},
		},
		ReoptimizeEvery: 500,
		PerTerminal: func(i int) (float64, float64) {
			return 0.08 + 0.05*float64(i%4), 0.01 + 0.015*float64(i%3)
		},
		SnapshotEvery: 400,
		Seed:          11,
		Engine:        engine,
	}
}

const checkpointSlots = 1_500

// TestCheckpointResumeEquivalence is the crash-recovery analogue of
// TestEngineEquivalence and the merge gate for any checkpoint change:
// for every engine at every shard count in {1, 3, 7}, a run that is
// checkpointed at an odd interior cadence, serialized, deserialized and
// resumed from each emitted checkpoint must produce a Report whose JSON
// document is byte-identical to the uninterrupted run's — and the
// observed (checkpoint-emitting) run itself must be byte-identical too,
// proving capture never perturbs the simulation. Run under -race in CI.
func TestCheckpointResumeEquivalence(t *testing.T) {
	// 611 divides neither the 400-slot telemetry cadence, the 500-slot
	// reoptimization period, nor the 1500-slot run: checkpoints land at
	// 611 and 1222, both mid-batch from every other boundary's view.
	const every = 611
	engines := []Engine{EngineDES, EngineFast, EngineCols}
	shardCounts := []int{1, 3, 7}

	report := func(t *testing.T, m *NetworkMetrics) []byte {
		t.Helper()
		b, err := json.MarshalIndent(NewReport(m), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, engine := range engines {
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/%dshards", engine, shards), func(t *testing.T) {
				cfg := checkpointConfig(engine)
				clean, err := SimulateNetworkSharded(cfg, checkpointSlots, shards)
				if err != nil {
					t.Fatal(err)
				}
				want := report(t, clean)

				var cps []*Checkpoint
				observed, err := SimulateNetworkCheckpointed(context.Background(),
					cfg, checkpointSlots, shards, every, func(cp *Checkpoint) {
						// The sink must not retain cp; round-trip it
						// through the wire format instead, which also
						// proves every emitted checkpoint serializes.
						data, err := EncodeCheckpoint(cp)
						if err != nil {
							t.Error(err)
							return
						}
						decoded, err := DecodeCheckpoint(data)
						if err != nil {
							t.Error(err)
							return
						}
						cps = append(cps, decoded)
					})
				if err != nil {
					t.Fatal(err)
				}
				if got := report(t, observed); !bytes.Equal(got, want) {
					t.Errorf("checkpoint capture perturbed the run:\n%s\nreference:\n%s", got, want)
				}
				if len(cps) != 2 || cps[0].Slot != every || cps[1].Slot != 2*every {
					t.Fatalf("expected checkpoints at slots %d and %d, got %d checkpoint(s)",
						every, 2*every, len(cps))
				}

				for _, cp := range cps {
					resumed, err := ResumeNetworkCheckpointed(context.Background(),
						cfg, checkpointSlots, shards, cp, 0, nil)
					if err != nil {
						t.Fatalf("resuming from slot %d: %v", cp.Slot, err)
					}
					if got := report(t, resumed); !bytes.Equal(got, want) {
						t.Errorf("resume from slot %d diverged from the uninterrupted run:\n%s\nreference:\n%s",
							cp.Slot, got, want)
					}
				}
			})
		}
	}
}

// TestCheckpointCrossEngineResume checks the engine-class contract: the
// batch engines (fast, cols) share a checkpoint representation, so a
// checkpoint taken by one resumes on the other with byte-identical
// results, while the reference engine's representation is its own class
// and cross-class resume is rejected rather than silently diverging.
func TestCheckpointCrossEngineResume(t *testing.T) {
	const every = 611
	const shards = 3

	capture := func(t *testing.T, engine Engine) (*Checkpoint, []byte) {
		t.Helper()
		cfg := checkpointConfig(engine)
		var cp *Checkpoint
		m, err := SimulateNetworkCheckpointed(context.Background(),
			cfg, checkpointSlots, shards, every, func(c *Checkpoint) {
				if c.Slot == every {
					data, err := EncodeCheckpoint(c)
					if err != nil {
						t.Error(err)
						return
					}
					cp, err = DecodeCheckpoint(data)
					if err != nil {
						t.Error(err)
					}
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(NewReport(m), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return cp, b
	}

	fastCP, want := capture(t, EngineFast)

	colsCfg := checkpointConfig(EngineCols)
	resumed, err := ResumeNetworkCheckpointed(context.Background(),
		colsCfg, checkpointSlots, shards, fastCP, 0, nil)
	if err != nil {
		t.Fatalf("cols resume of fast checkpoint: %v", err)
	}
	got, err := json.MarshalIndent(NewReport(resumed), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cols resume of a fast checkpoint diverged:\n%s\nreference:\n%s", got, want)
	}

	desCfg := checkpointConfig(EngineDES)
	if _, err := ResumeNetworkCheckpointed(context.Background(),
		desCfg, checkpointSlots, shards, fastCP, 0, nil); err == nil {
		t.Error("resuming a batch-engine checkpoint on the reference engine should fail")
	}
}

// TestCheckpointResumeValidation rejects checkpoints that do not
// describe the offered run: wrong shard count, wrong seed, corrupted
// bytes. shards == 0 adopts the checkpoint's own partition.
func TestCheckpointResumeValidation(t *testing.T) {
	const every = 611
	cfg := checkpointConfig(EngineFast)
	var cp *Checkpoint
	var raw []byte
	if _, err := SimulateNetworkCheckpointed(context.Background(),
		cfg, checkpointSlots, 3, every, func(c *Checkpoint) {
			if c.Slot == every {
				data, err := EncodeCheckpoint(c)
				if err != nil {
					t.Error(err)
					return
				}
				raw = data
				cp, err = DecodeCheckpoint(data)
				if err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeNetworkCheckpointed(context.Background(),
		cfg, checkpointSlots, 7, cp, 0, nil); err == nil {
		t.Error("resume with a mismatched shard count should fail")
	}
	badSeed := cfg
	badSeed.Seed = 99
	if _, err := ResumeNetworkCheckpointed(context.Background(),
		badSeed, checkpointSlots, 3, cp, 0, nil); err == nil {
		t.Error("resume with a mismatched seed should fail")
	}
	if _, err := ResumeNetworkCheckpointed(context.Background(),
		cfg, checkpointSlots-1, 3, cp, 0, nil); err == nil {
		t.Error("resume with a mismatched run length should fail")
	}

	// shards == 0 adopts the checkpoint's partition instead of guessing
	// from GOMAXPROCS.
	if _, err := ResumeNetworkCheckpointed(context.Background(),
		cfg, checkpointSlots, 0, cp, 0, nil); err != nil {
		t.Errorf("resume with shards 0 should adopt the checkpoint's 3: %v", err)
	}

	// Corruption anywhere in the payload must be caught by the trailer.
	raw[len(raw)/2] ^= 0x40
	if _, err := DecodeCheckpoint(raw); err == nil {
		t.Error("decoding a corrupted checkpoint should fail")
	}
	if _, err := DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Error("decoding garbage should fail")
	}
}
