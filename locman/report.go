package locman

import (
	"repro/internal/telemetry"
)

// ReportSchema versions the JSON document layout produced by NewReport
// (and emitted by pcnsim -json). It increments on any breaking change to
// the Report struct, so downstream consumers can reject documents they do
// not understand.
const ReportSchema = 1

// Report is the schema-stable JSON view of a finished PCN network
// simulation: the final counters and cost averages, the latency
// histograms with their tail quantiles, and the telemetry snapshot
// series (present when NetworkConfig.SnapshotEvery was set). Every field
// has an explicit snake_case JSON tag; the document round-trips through
// encoding/json without loss.
type Report struct {
	// Schema is always ReportSchema.
	Schema int `json:"schema"`
	// Slots and Terminals echo the run shape.
	Slots     int64 `json:"slots"`
	Terminals int   `json:"terminals"`

	// Update-side counters; see NetworkMetrics for field semantics.
	Updates         int64 `json:"updates"`
	LostUpdates     int64 `json:"lost_updates"`
	Retransmissions int64 `json:"retransmissions"`
	Acks            int64 `json:"acks"`
	OutageDeferred  int64 `json:"outage_deferred"`

	// Paging-side counters.
	Calls         int64 `json:"calls"`
	PolledCells   int64 `json:"polled_cells"`
	DroppedCalls  int64 `json:"dropped_calls"`
	RePolls       int64 `json:"re_polls"`
	FallbackCalls int64 `json:"fallback_calls"`
	LostPolls     int64 `json:"lost_polls"`
	LostReplies   int64 `json:"lost_replies"`
	NotFound      int64 `json:"not_found"`

	// Signalling bytes on the wire per message class.
	UpdateBytes int64 `json:"update_bytes"`
	PollBytes   int64 `json:"poll_bytes"`
	ReplyBytes  int64 `json:"reply_bytes"`
	AckBytes    int64 `json:"ack_bytes"`

	// Events counts scheduler events dispatched.
	Events uint64 `json:"events"`

	// Per-slot per-terminal cost averages in the paper's U/V units.
	UpdateCost float64 `json:"update_cost"`
	PagingCost float64 `json:"paging_cost"`
	TotalCost  float64 `json:"total_cost"`

	// Delay summarizes the per-call paging delay (polling cycles) and
	// Recovery the HLR desync→recovery latency (slots).
	Delay    Summary `json:"delay"`
	Recovery Summary `json:"recovery"`

	// DelayHist and RecoveryHist carry the full histogram buckets plus
	// derived tail quantiles; nil when the metrics were hand-built rather
	// than engine-produced.
	DelayHist    *HistReport `json:"delay_hist,omitempty"`
	RecoveryHist *HistReport `json:"recovery_hist,omitempty"`

	// ThresholdSlots[d] counts terminal-slots operated at threshold d.
	ThresholdSlots map[int]int64 `json:"threshold_slots,omitempty"`

	// Snapshots is the telemetry snapshot series; empty when
	// NetworkConfig.SnapshotEvery was zero.
	Snapshots []Frame `json:"snapshots,omitempty"`
}

// HistReport is a latency histogram together with its derived tail
// quantiles, frozen at report time.
type HistReport struct {
	Hist
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

func histReport(h *telemetry.Hist) *HistReport {
	if h == nil {
		return nil
	}
	return &HistReport{Hist: *h.Clone(), P50: h.P50(), P95: h.P95(), P99: h.P99()}
}

// NewReport builds the JSON-able report from a finished run's metrics.
// The metrics are copied; mutating m afterwards does not affect the
// report.
func NewReport(m *NetworkMetrics) *Report {
	r := &Report{
		Schema:    ReportSchema,
		Slots:     m.Slots,
		Terminals: m.Terminals,

		Updates:         m.Updates,
		LostUpdates:     m.LostUpdates,
		Retransmissions: m.Retransmissions,
		Acks:            m.Acks,
		OutageDeferred:  m.OutageDeferred,

		Calls:         m.Calls,
		PolledCells:   m.PolledCells,
		DroppedCalls:  m.DroppedCalls,
		RePolls:       m.RePolls,
		FallbackCalls: m.FallbackCalls,
		LostPolls:     m.LostPolls,
		LostReplies:   m.LostReplies,
		NotFound:      m.NotFound,

		UpdateBytes: m.UpdateBytes,
		PollBytes:   m.PollBytes,
		ReplyBytes:  m.ReplyBytes,
		AckBytes:    m.AckBytes,

		Events: m.Events,

		UpdateCost: m.UpdateCost,
		PagingCost: m.PagingCost,
		TotalCost:  m.TotalCost,

		Delay:    telemetry.Summarize(&m.Delay),
		Recovery: telemetry.Summarize(&m.Recovery),

		DelayHist:    histReport(m.DelayHist),
		RecoveryHist: histReport(m.RecoveryHist),
	}
	if len(m.ThresholdSlots) > 0 {
		r.ThresholdSlots = make(map[int]int64, len(m.ThresholdSlots))
		for d, n := range m.ThresholdSlots {
			r.ThresholdSlots[d] = n
		}
	}
	if len(m.Snapshots) > 0 {
		r.Snapshots = append([]Frame(nil), m.Snapshots...)
	}
	return r
}
