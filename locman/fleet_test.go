package locman

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestHeteroFleetMatchesClosure holds HeteroFleet to its contract: the
// declarative fleet must reproduce the historical pcnsim -hetero
// closure bit for bit — full Report bytes, not just headline metrics —
// so moving the CLI and the job Spec onto the fleet changed nothing.
func TestHeteroFleetMatchesClosure(t *testing.T) {
	base := NetworkConfig{
		Config: Config{
			Model:      TwoDimensional,
			MoveProb:   0.1,
			CallProb:   0.02,
			UpdateCost: 100,
			PollCost:   10,
			MaxDelay:   3,
		},
		Terminals:     26, // not a multiple of 11, so the ramp wraps unevenly
		Threshold:     -1,
		SnapshotEvery: 700,
		Seed:          13,
	}
	run := func(cfg NetworkConfig) []byte {
		t.Helper()
		m, err := SimulateNetworkSharded(cfg, 5_000, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(NewReport(m), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	closure := base
	closure.PerTerminal = func(i int) (float64, float64) {
		f := 0.5 + float64(i%11)/10.0 // the historical hardcoded ramp
		return base.MoveProb * f, base.CallProb
	}
	fleet := base
	fleet.Fleet = HeteroFleet(base.MoveProb, base.CallProb)

	want, got := run(closure), run(fleet)
	if !bytes.Equal(got, want) {
		t.Errorf("HeteroFleet diverged from the historical closure:\n%s\nclosure:\n%s", got, want)
	}
}

// TestFleetValidate pins fleet-level up-front validation: empty fleets,
// out-of-range jitter, and groups whose jitter extremes escape the
// parameter space are all rejected with errors naming the offender —
// before any simulation work starts.
func TestFleetValidate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fleet *Fleet
		err   string // "" means valid
	}{
		{"nil fleet", nil, "fleet has no groups"},
		{"no groups", &Fleet{}, "fleet has no groups"},
		{"plain valid", &Fleet{Groups: []FleetGroup{{MoveProb: 0.2, CallProb: 0.05}}}, ""},
		{"jittered valid", &Fleet{Groups: []FleetGroup{
			{MoveProb: 0.2, CallProb: 0.05, QJitter: 1, CJitter: 0.5},
		}}, ""},
		{"negative q jitter", &Fleet{Groups: []FleetGroup{
			{MoveProb: 0.2, CallProb: 0.05, QJitter: -0.1},
		}}, "group 0: move-probability jitter -0.1 outside [0, 1]"},
		{"oversized c jitter", &Fleet{Groups: []FleetGroup{
			{MoveProb: 0.2, CallProb: 0.05},
			{MoveProb: 0.2, CallProb: 0.05, CJitter: 1.5},
		}}, "group 1: call-probability jitter 1.5 outside [0, 1]"},
		{"NaN jitter", &Fleet{Groups: []FleetGroup{
			{MoveProb: 0.2, CallProb: 0.05, QJitter: math.NaN()},
		}}, "outside [0, 1]"},
		{"upper extreme escapes", &Fleet{Groups: []FleetGroup{
			{MoveProb: 0.2, CallProb: 0.05},
			// 0.7·1.5 + 0.05 > 1 at the +50% extreme.
			{MoveProb: 0.7, CallProb: 0.05, QJitter: 0.5},
		}}, "group 1:"},
		{"negative base", &Fleet{Groups: []FleetGroup{
			{MoveProb: -0.1, CallProb: 0.05},
		}}, "group 0:"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.fleet.Validate()
			if tc.err == "" {
				if err != nil {
					t.Fatalf("valid fleet rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want containing %q", err, tc.err)
			}
		})
	}
}

// TestFleetPerTerminalDeterminism checks the jitter contract: a
// member's parameters depend only on (seed, terminal id) — never on
// call order — jitter-free groups reproduce their base exactly, and
// every jittered draw stays inside [base·(1−j), base·(1+j)].
func TestFleetPerTerminalDeterminism(t *testing.T) {
	f := &Fleet{Groups: []FleetGroup{
		{MoveProb: 0.2, CallProb: 0.04, QJitter: 0.5, CJitter: 0.25},
		{MoveProb: 0.1, CallProb: 0.02}, // jitter-free
	}}
	a, b := f.perTerminal(42), f.perTerminal(42)
	other := f.perTerminal(43)
	var differs bool
	for i := 0; i < 64; i++ {
		q1, c1 := a(i)
		// Same seed: identical from an independent closure instance with
		// a different call history (b already served terminal 63−i).
		b(63 - i)
		q2, c2 := b(i)
		if q1 != q2 || c1 != c2 {
			t.Fatalf("terminal %d: (%v, %v) vs (%v, %v) for the same seed", i, q1, c1, q2, c2)
		}
		g := f.Groups[i%2]
		if g.QJitter == 0 && g.CJitter == 0 {
			if q1 != g.MoveProb || c1 != g.CallProb {
				t.Fatalf("jitter-free terminal %d drew (%v, %v), want base (%v, %v)",
					i, q1, c1, g.MoveProb, g.CallProb)
			}
		} else {
			if q1 < g.MoveProb*(1-g.QJitter) || q1 > g.MoveProb*(1+g.QJitter) {
				t.Fatalf("terminal %d q %v outside jitter range", i, q1)
			}
			if c1 < g.CallProb*(1-g.CJitter) || c1 > g.CallProb*(1+g.CJitter) {
				t.Fatalf("terminal %d c %v outside jitter range", i, c1)
			}
			if oq, _ := other(i); oq == q1 {
				continue // rare but possible for one terminal; tracked below
			}
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical jittered parameters throughout")
	}
}

// TestFleetPerTerminalExclusive checks the configuration guard: a
// config carrying both the declarative Fleet and the PerTerminal
// callback is ambiguous and must be rejected.
func TestFleetPerTerminalExclusive(t *testing.T) {
	cfg := NetworkConfig{
		Config: Config{
			Model: TwoDimensional, MoveProb: 0.1, CallProb: 0.02,
			UpdateCost: 100, PollCost: 10, MaxDelay: 3,
		},
		Terminals:   4,
		Threshold:   2,
		Fleet:       &Fleet{Groups: []FleetGroup{{MoveProb: 0.1, CallProb: 0.02}}},
		PerTerminal: func(i int) (float64, float64) { return 0.1, 0.02 },
		Seed:        1,
	}
	_, err := SimulateNetworkSharded(cfg, 100, 1)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Fleet+PerTerminal accepted: %v", err)
	}
}

// TestFleetInvalidRejectedUpFront checks an invalid fleet fails the run
// before simulation starts, with the group-naming error — the
// fleet-level half of the heterogeneous validation fix.
func TestFleetInvalidRejectedUpFront(t *testing.T) {
	cfg := NetworkConfig{
		Config: Config{
			Model: TwoDimensional, MoveProb: 0.1, CallProb: 0.02,
			UpdateCost: 100, PollCost: 10, MaxDelay: 3,
		},
		Terminals: 4,
		Threshold: 2,
		Fleet:     &Fleet{Groups: []FleetGroup{{MoveProb: 0.8, CallProb: 0.4}}},
		Seed:      1,
	}
	_, err := SimulateNetworkSharded(cfg, 100, 1)
	if err == nil || !strings.Contains(err.Error(), "fleet group 0") {
		t.Fatalf("invalid fleet accepted or error unhelpful: %v", err)
	}
}
