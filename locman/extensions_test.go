package locman

import (
	"math"
	"testing"
)

func TestEvaluateGroupedNeverWorse(t *testing.T) {
	cfg := valid()
	for d := 0; d <= 8; d++ {
		sdf, err := Evaluate(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := EvaluateGrouped(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		if grouped.Total > sdf.Total+1e-9 {
			t.Errorf("d=%d: grouped %v worse than SDF %v", d, grouped.Total, sdf.Total)
		}
	}
}

func TestOptimizeGrouped(t *testing.T) {
	cfg := valid()
	sdf, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := OptimizeGrouped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Best.Total > sdf.Best.Total+1e-9 {
		t.Errorf("grouped optimum %v worse than SDF %v", grouped.Best.Total, sdf.Best.Total)
	}
}

func TestOptimizeMeanDelayAPI(t *testing.T) {
	cfg := valid()
	cfg.MaxDelay = Unbounded
	res, err := OptimizeMeanDelay(cfg, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ExpectedDelay > 1.5+1e-9 {
		t.Errorf("expected delay %v over bound", res.Best.ExpectedDelay)
	}
	if _, err := OptimizeMeanDelay(cfg, 0.2); err == nil {
		t.Error("sub-unit bound accepted")
	}
}

func TestAnalyzeBaselineMatchesSimulation(t *testing.T) {
	cfg := valid()
	ana, err := AnalyzeBaseline(cfg, BaselineLA, 2)
	if err != nil {
		t.Fatal(err)
	}
	simr, err := SimulateBaseline(cfg, BaselineLA, 2, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ana.TotalCost-simr.TotalCost) / ana.TotalCost; rel > 0.05 {
		t.Errorf("analysis %v vs simulation %v", ana.TotalCost, simr.TotalCost)
	}
	if _, err := AnalyzeBaseline(cfg, BaselineDistanceBased, 2); err == nil {
		t.Error("distance-based analysis should defer to Evaluate")
	}
}

func TestDelayDistributionSums(t *testing.T) {
	cfg := valid()
	dist, err := DelayDistribution(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum %v", sum)
	}
}

func TestRingCycles(t *testing.T) {
	cfg := valid() // m = 3
	rc, err := RingCycles(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc) != 6 {
		t.Fatalf("%d rings", len(rc))
	}
	// Cycles are non-decreasing in ring index, start at 0, max < m.
	prev := 0
	for i, c := range rc {
		if c < prev || c-prev > 1 {
			t.Errorf("ring %d: cycle %d after %d", i, c, prev)
		}
		if c >= 3 {
			t.Errorf("ring %d: cycle %d exceeds m", i, c)
		}
		prev = c
	}
	if rc[0] != 0 {
		t.Errorf("ring 0 in cycle %d", rc[0])
	}
	bad := cfg
	bad.MoveProb = -1
	if _, err := RingCycles(bad, 3); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestExtensionValidation(t *testing.T) {
	bad := Config{Model: OneDimensional, MoveProb: -1, UpdateCost: 1, PollCost: 1}
	if _, err := EvaluateGrouped(bad, 1); err == nil {
		t.Error("EvaluateGrouped accepted invalid config")
	}
	if _, err := OptimizeGrouped(bad); err == nil {
		t.Error("OptimizeGrouped accepted invalid config")
	}
	if _, err := DelayDistribution(bad, 1); err == nil {
		t.Error("DelayDistribution accepted invalid config")
	}
	if _, err := OptimizeMeanDelay(bad, 2); err == nil {
		t.Error("OptimizeMeanDelay accepted invalid config")
	}
	if _, err := AnalyzeBaseline(bad, BaselineLA, 1); err == nil {
		t.Error("AnalyzeBaseline accepted invalid config")
	}
	if _, _, err := OptimalLocationArea(bad, 10); err == nil {
		t.Error("OptimalLocationArea accepted invalid config")
	}
}
