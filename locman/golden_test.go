package locman

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenConfigs are the pinned distance-scheme configurations: the
// committed fixtures were generated before the update-scheme extraction,
// so a passing run proves the refactored engines still produce the
// pre-refactor reports byte-for-byte. The cases deliberately cover both
// grids, the fault/recovery machinery, telemetry frames, the dynamic
// per-user scheme and a heterogeneous population (the pcnsim -hetero
// parameter ramp, which the Fleet descriptor must reproduce exactly).
func goldenConfigs() map[string]NetworkConfig {
	heteroRamp := func(base, c float64) func(i int) (float64, float64) {
		return func(i int) (float64, float64) {
			f := 0.5 + float64(i%11)/10.0 // 0.5x .. 1.5x
			return base * f, c
		}
	}
	return map[string]NetworkConfig{
		"2d-static-lossy": {
			Config: Config{
				Model:      TwoDimensional,
				MoveProb:   0.2,
				CallProb:   0.04,
				UpdateCost: 50,
				PollCost:   1,
				MaxDelay:   3,
			},
			Terminals: 9,
			Threshold: 2,
			Faults: FaultPlan{
				UpdateLoss:    0.25,
				PollLoss:      0.15,
				ReplyLoss:     0.1,
				UpdateRetries: 2,
				PageRetries:   3,
				Outages:       []Outage{{Start: 300, End: 450}},
			},
			SnapshotEvery: 400,
			Seed:          11,
		},
		"1d-static-hetero": {
			Config: Config{
				Model:      OneDimensional,
				MoveProb:   0.3,
				CallProb:   0.02,
				UpdateCost: 100,
				PollCost:   10,
				MaxDelay:   3,
			},
			Terminals:   12,
			Threshold:   3,
			PerTerminal: heteroRamp(0.3, 0.02),
			Seed:        7,
		},
		"2d-dynamic-clean": {
			Config: Config{
				Model:      TwoDimensional,
				MoveProb:   0.1,
				CallProb:   0.02,
				UpdateCost: 100,
				PollCost:   10,
				MaxDelay:   3,
			},
			Terminals:       8,
			Threshold:       2,
			Dynamic:         true,
			ReoptimizeEvery: 500,
			SnapshotEvery:   700,
			Seed:            3,
		},
	}
}

const goldenSlots = 1_500

// TestGoldenDistanceReport pins the distance-based update scheme to its
// pre-refactor output: the full Report JSON of each golden configuration
// must match the committed fixture byte-for-byte, on every engine.
// Regenerate with `go test ./locman -run TestGoldenDistanceReport -update`
// — but only when a change is *supposed* to alter distance-scheme
// results, which almost nothing is.
func TestGoldenDistanceReport(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden_"+name+".json")
			got := goldenReport(t, cfg, EngineFast, 3)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fast-engine report diverged from pre-refactor fixture %s:\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
			for _, e := range []Engine{EngineDES, EngineCols} {
				if other := goldenReport(t, cfg, e, 1); !bytes.Equal(other, want) {
					t.Errorf("%s engine diverged from fixture %s", e, path)
				}
			}
		})
	}
}

func goldenReport(t *testing.T, cfg NetworkConfig, engine Engine, shards int) []byte {
	t.Helper()
	cfg.Engine = engine
	m, err := SimulateNetworkSharded(cfg, goldenSlots, shards)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(NewReport(m), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}
