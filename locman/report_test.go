package locman

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// reportConfig is a deterministic faulty run that populates every Report
// section: losses, retransmissions, an outage window, dropped calls,
// recovery latencies and a telemetry snapshot series.
func reportConfig() NetworkConfig {
	return NetworkConfig{
		Config: Config{
			Model:      TwoDimensional,
			MoveProb:   0.15,
			CallProb:   0.03,
			UpdateCost: 20,
			PollCost:   1,
			MaxDelay:   3,
		},
		Terminals: 8,
		Threshold: 2,
		Faults: FaultPlan{
			UpdateLoss:    0.2,
			PollLoss:      0.05,
			ReplyLoss:     0.05,
			UpdateRetries: 2,
			PageRetries:   2,
			Outages:       []Outage{{Start: 200, End: 400}},
		},
		SnapshotEvery: 500,
		Seed:          7,
	}
}

func buildReport(t *testing.T) *Report {
	t.Helper()
	m, err := SimulateNetworkSharded(reportConfig(), 2_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	return NewReport(m)
}

// TestReportEngineEquivalence is the public-API face of the fast path's
// bit-identity contract: the full Report JSON — counters, costs,
// histograms, telemetry snapshot series — is byte-identical whichever
// engine produced it. (TestReportGolden already pins the fast engine, the
// default, against the checked-in golden document.)
func TestReportEngineEquivalence(t *testing.T) {
	marshal := func(e Engine) []byte {
		t.Helper()
		cfg := reportConfig()
		cfg.Engine = e
		m, err := SimulateNetworkSharded(cfg, 2_000, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(NewReport(m), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	fast, des, cols := marshal(EngineFast), marshal(EngineDES), marshal(EngineCols)
	if !bytes.Equal(fast, des) {
		t.Errorf("report JSON diverged between engines\nfast:\n%s\ndes:\n%s", fast, des)
	}
	if !bytes.Equal(cols, des) {
		t.Errorf("report JSON diverged between engines\ncols:\n%s\ndes:\n%s", cols, des)
	}
}

// TestReportGolden pins the exact JSON document a deterministic run
// produces — field names, ordering and bit-exact values. Any schema
// change must show up as a golden diff (and bump ReportSchema when
// breaking). Regenerate with: go test ./locman -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	r := buildReport(t)
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON diverged from %s (rerun with -update if intentional)\ngot:\n%s", golden, got)
	}
}

// TestReportRoundTrip checks the document decodes back into Report with
// unknown fields disallowed and survives the trip unchanged.
func TestReportRoundTrip(t *testing.T) {
	r := buildReport(t)
	if r.Schema != ReportSchema {
		t.Fatalf("schema %d, want %d", r.Schema, ReportSchema)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back Report
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("decode with DisallowUnknownFields: %v", err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Error("report did not survive the JSON round trip")
	}
}

// TestReportInternalConsistency checks the cross-field invariants the
// schemacheck tool relies on.
func TestReportInternalConsistency(t *testing.T) {
	r := buildReport(t)
	if r.Delay.N != r.Calls-r.DroppedCalls {
		t.Errorf("delay samples %d != calls %d - dropped %d", r.Delay.N, r.Calls, r.DroppedCalls)
	}
	if r.DelayHist == nil || r.DelayHist.N != r.Delay.N {
		t.Errorf("delay histogram inconsistent with summary: %+v vs %+v", r.DelayHist, r.Delay)
	}
	if r.RecoveryHist == nil || r.RecoveryHist.N != r.Recovery.N {
		t.Errorf("recovery histogram inconsistent with summary: %+v vs %+v", r.RecoveryHist, r.Recovery)
	}
	if len(r.Snapshots) != 4 {
		t.Fatalf("%d snapshots, want 4", len(r.Snapshots))
	}
	last := r.Snapshots[len(r.Snapshots)-1]
	if last.Slot != r.Slots || last.Updates != r.Updates || last.Events != r.Events {
		t.Errorf("final snapshot %+v does not match report totals", last)
	}
	if r.LostUpdates == 0 || r.Retransmissions == 0 || r.OutageDeferred == 0 || r.Recovery.N == 0 {
		t.Errorf("fault machinery unexercised: %+v", r)
	}
}
