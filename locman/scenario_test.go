package locman

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestScenarioRegistry pins the registry's shape: unique non-empty
// names, one-line descriptions, ScenarioNames in registry order, and
// every scenario resolvable by its own name.
func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) == 0 {
		t.Fatal("empty scenario registry")
	}
	names := ScenarioNames()
	if len(names) != len(scs) {
		t.Fatalf("%d names for %d scenarios", len(names), len(scs))
	}
	seen := map[string]bool{}
	for i, sc := range scs {
		if sc.Name == "" || sc.Description == "" {
			t.Errorf("scenario %d missing name or description", i)
		}
		if strings.ContainsAny(sc.Name, " \t\n") {
			t.Errorf("scenario name %q contains whitespace; CLI listings split on it", sc.Name)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if names[i] != sc.Name {
			t.Errorf("ScenarioNames[%d] = %q, want %q", i, names[i], sc.Name)
		}
		got, err := ScenarioByName(sc.Name)
		if err != nil {
			t.Errorf("ScenarioByName(%q): %v", sc.Name, err)
		} else if got.Name != sc.Name {
			t.Errorf("ScenarioByName(%q) resolved %q", sc.Name, got.Name)
		}
	}
}

// TestScenarioByNameUnknown checks the error enumerates every valid
// name, matching the EngineByName / SchemeByName style.
func TestScenarioByNameUnknown(t *testing.T) {
	_, err := ScenarioByName("rush-hour")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown scenario "rush-hour"`) {
		t.Errorf("error %q does not quote the bad name", msg)
	}
	for _, name := range ScenarioNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not offer %q", msg, name)
		}
	}
}

// TestScenariosRunnable runs every registered scenario end to end on a
// small shape across shard counts: the configuration must validate, the
// run must produce traffic, and the Report must be shard-invariant —
// so a scenario cannot be registered broken.
func TestScenariosRunnable(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			cfg := sc.Network()
			cfg.Terminals = 7
			cfg.Seed = 3
			cfg.SnapshotEvery = 900
			run := func(shards int) []byte {
				t.Helper()
				m, err := SimulateNetworkSharded(cfg, 2_000, shards)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.MarshalIndent(NewReport(m), "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			want := run(1)
			if got := run(3); !bytes.Equal(got, want) {
				t.Error("scenario report is not shard-invariant")
			}
			if bytes.Contains(want, []byte(`"calls": 0,`)) {
				t.Error("scenario produced no calls; it exercises nothing")
			}
		})
	}
}
