package locman

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// TestEngineEquivalence is the three-engine differential suite and the
// merge gate for any engine change: over the cross product of
// {distance, timer, movement update schemes} × {1d, 2d} ×
// {static, dynamic threshold} × {zero faults, lossy+outage}, every
// engine at every shard count in {1, 3, 7} must produce a Report whose
// JSON document is byte-identical to the single-shard reference
// engine's. Comparing the full Report bytes — not just headline metrics
// — covers the counters, per-call delay and recovery summaries, both
// histograms and the telemetry snapshot series; byte equality against
// one reference makes every pair of {des, fast, cols} equal by
// transitivity. Run under -race in CI.
//
// The timer and movement schemes run on a jittered heterogeneous Fleet
// (covering the fleet path's shard invariance in the same stroke) and
// skip the dynamic mode, which is distance-only by validation. The
// movement count (5) exceeds the paging radius (2), so out-of-area calls
// exercise the fallback/recovery paging paths even in the clean cases;
// the timer period (37) divides neither the snapshot cadence nor the run
// length, so refresh deadlines land mid-batch for the batch engines.
func TestEngineEquivalence(t *testing.T) {
	schemes := []struct {
		name   string
		scheme UpdateScheme
	}{
		{"distance", nil},
		{"timer", TimerUpdate(37)},
		{"movement", MovementUpdate(5)},
	}
	grids := []struct {
		name  string
		model Model
	}{
		{"1d", OneDimensional},
		{"2d", TwoDimensional},
	}
	modes := []struct {
		name    string
		dynamic bool
	}{
		{"static", false},
		{"dynamic", true},
	}
	faults := []struct {
		name string
		plan FaultPlan
	}{
		{"clean", FaultPlan{}},
		{"lossy", FaultPlan{
			UpdateLoss:    0.25,
			PollLoss:      0.15,
			ReplyLoss:     0.1,
			UpdateRetries: 2,
			PageRetries:   3,
			Outages:       []Outage{{Start: 300, End: 450}, {Start: 1_200, End: 1_350}},
		}},
	}
	engines := []Engine{EngineDES, EngineFast, EngineCols}
	shardCounts := []int{1, 3, 7}

	config := func(scheme UpdateScheme, model Model, dynamic bool, plan FaultPlan) NetworkConfig {
		cfg := NetworkConfig{
			Config: Config{
				Model:      model,
				MoveProb:   0.2,
				CallProb:   0.04,
				UpdateCost: 50,
				PollCost:   1,
				MaxDelay:   3,
			},
			Terminals: 9,
			Threshold: 2,
			Dynamic:   dynamic,
			Faults:    plan,
			// A cadence that divides neither the run length nor the
			// dynamic reoptimization period, so frame boundaries land
			// mid-batch for the batched engines.
			SnapshotEvery: 400,
			Seed:          11,
		}
		if dynamic {
			cfg.ReoptimizeEvery = 500
			cfg.PerTerminal = func(i int) (float64, float64) {
				return 0.08 + 0.05*float64(i%4), 0.01 + 0.015*float64(i%3)
			}
		}
		if scheme != nil {
			cfg.Scheme = scheme
			cfg.Fleet = &Fleet{Groups: []FleetGroup{
				{MoveProb: 0.25, CallProb: 0.03, QJitter: 0.5, CJitter: 0.5},
				{MoveProb: 0.1, CallProb: 0.06, QJitter: 0.2},
			}}
		}
		return cfg
	}
	const slots = 1_500

	marshal := func(t *testing.T, cfg NetworkConfig, engine Engine, shards int) []byte {
		t.Helper()
		cfg.Engine = engine
		m, err := SimulateNetworkSharded(cfg, slots, shards)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(NewReport(m), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, sch := range schemes {
		for _, g := range grids {
			for _, mode := range modes {
				if mode.dynamic && sch.scheme != nil {
					continue // the dynamic mechanism is distance-only
				}
				for _, f := range faults {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", sch.name, g.name, mode.name, f.name), func(t *testing.T) {
						cfg := config(sch.scheme, g.model, mode.dynamic, f.plan)
						want := marshal(t, cfg, EngineDES, 1)
						if f.plan.UpdateLoss > 0 && bytes.Contains(want, []byte(`"lost_updates": 0,`)) {
							t.Fatal("lossy plan exercised no losses; the case covers nothing")
						}
						if sch.scheme != nil && bytes.Contains(want, []byte(`"updates": 0,`)) {
							t.Fatalf("%s scheme sent no updates; the case covers nothing", sch.name)
						}
						for _, engine := range engines {
							for _, shards := range shardCounts {
								if engine == EngineDES && shards == 1 {
									continue // the reference itself
								}
								got := marshal(t, cfg, engine, shards)
								if !bytes.Equal(got, want) {
									t.Errorf("%s engine at %d shard(s) diverged from the single-shard reference:\n%s\nreference:\n%s",
										engine, shards, got, want)
								}
							}
						}
					})
				}
			}
		}
	}
}
