package locman

import (
	"math"
	"reflect"
	"testing"
)

func valid() Config {
	return Config{
		Model:      TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
	}
}

func TestOptimizeMatchesPaperTable2(t *testing.T) {
	// Table 2, U=100, delay 3: d* = 2, C_T = 1.335.
	res, err := Optimize(valid())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Threshold != 2 {
		t.Errorf("d* = %d, want 2", res.Best.Threshold)
	}
	if math.Abs(res.Best.Total-1.335) > 5e-4 {
		t.Errorf("C_T = %v, want 1.335", res.Best.Total)
	}
}

func TestEvaluateConsistentWithOptimize(t *testing.T) {
	cfg := valid()
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(cfg, res.Best.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	if b != res.Best {
		t.Errorf("Evaluate(%d) = %+v, Optimize best = %+v", res.Best.Threshold, b, res.Best)
	}
}

func TestStationarySumsToOne(t *testing.T) {
	for _, m := range []Model{OneDimensional, TwoDimensional, TwoDimensionalApprox} {
		pi, err := Stationary(m, 0.1, 0.02, 6)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range pi {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%v: sum %v", m, sum)
		}
	}
	if _, err := StationaryClosedForm(OneDimensional, 0.1, 0.02, 6); err != nil {
		t.Error(err)
	}
	if _, err := StationaryClosedForm(TwoDimensional, 0.1, 0.02, 6); err == nil {
		t.Error("closed form for exact 2-D accepted")
	}
}

func TestNearOptimalAndAnneal(t *testing.T) {
	cfg := valid()
	scan, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	near, err := NearOptimal(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if diff := near.Best.Threshold - scan.Best.Threshold; diff < -1 || diff > 1 {
		t.Errorf("d′ = %d vs d* = %d", near.Best.Threshold, scan.Best.Threshold)
	}
	ann, err := OptimizeAnneal(cfg, AnnealOptions{Seed: 3, MaxThreshold: 40, Y: 150})
	if err != nil {
		t.Fatal(err)
	}
	if ann.Best.Total > scan.Best.Total*1.05 {
		t.Errorf("anneal %v vs scan %v", ann.Best.Total, scan.Best.Total)
	}
}

func TestSimulateWalkAgreesWithEvaluate(t *testing.T) {
	cfg := valid()
	want, err := Evaluate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateWalk(cfg, 2, 2_000_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("walk %v vs analysis %v", got.TotalCost, want.Total)
	}
}

func TestSimulateNetworkSmoke(t *testing.T) {
	m, err := SimulateNetwork(NetworkConfig{
		Config:    valid(),
		Terminals: 5,
		Threshold: 2,
		Seed:      1,
	}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.NotFound != 0 {
		t.Errorf("%d paging failures", m.NotFound)
	}
	if m.Calls == 0 || m.Updates == 0 {
		t.Error("no traffic")
	}
}

func TestSimulateNetworkShardedMatchesSingleEngine(t *testing.T) {
	cfg := NetworkConfig{
		Config:    valid(),
		Terminals: 8,
		Threshold: 2,
		Seed:      7,
	}
	want, err := SimulateNetwork(cfg, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 3} {
		got, err := SimulateNetworkSharded(cfg, 5_000, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: sharded metrics diverged from SimulateNetwork", shards)
		}
	}
	if _, err := SimulateNetworkSharded(cfg, 5_000, -1); err == nil {
		t.Error("negative shard count accepted")
	}
}

func TestSimulateNetworkPerTerminal(t *testing.T) {
	m, err := SimulateNetwork(NetworkConfig{
		Config:    valid(),
		Terminals: 4,
		Threshold: 1,
		PerTerminal: func(i int) (float64, float64) {
			return 0.02 + 0.01*float64(i), 0.01
		},
		Seed: 2,
	}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Terminals != 4 {
		t.Errorf("terminals = %d", m.Terminals)
	}
}

func TestSimulateBaseline(t *testing.T) {
	cfg := valid()
	res, err := SimulateBaseline(cfg, BaselineLA, 2, 200_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 {
		t.Error("no calls")
	}
	if res.Delay.Mean() != 1 {
		t.Errorf("LA delay %v", res.Delay.Mean())
	}
	// Distance-based baseline equals the paper's mechanism.
	db, err := SimulateBaseline(cfg, BaselineDistanceBased, 2, 2_000_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(db.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("baseline distance %v vs analysis %v", db.TotalCost, want.Total)
	}
}

func TestPartitionFactories(t *testing.T) {
	for _, p := range []Partition{SDF(), Blanket(), PerRing(), EqualCells(), OptimalDP()} {
		if p.Name() == "" {
			t.Error("unnamed partition")
		}
		byName, err := PartitionByName(p.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", p.Name(), err)
			continue
		}
		if byName.Name() != p.Name() {
			t.Errorf("round trip %q → %q", p.Name(), byName.Name())
		}
	}
	if _, err := PartitionByName("bogus"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Model: Model(9), MoveProb: 0.1, UpdateCost: 1, PollCost: 1},
		{Model: OneDimensional, MoveProb: -1, UpdateCost: 1, PollCost: 1},
		{Model: OneDimensional, MoveProb: 0.6, CallProb: 0.6, UpdateCost: 1, PollCost: 1},
		{Model: OneDimensional, MoveProb: 0.1, UpdateCost: -1, PollCost: 1},
		{Model: OneDimensional, MoveProb: 0.1, UpdateCost: 1, PollCost: 1, MaxThreshold: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := Optimize(cfg); err == nil {
			t.Errorf("case %d: Optimize accepted", i)
		}
		if _, err := Evaluate(cfg, 1); err == nil {
			t.Errorf("case %d: Evaluate accepted", i)
		}
		if _, err := NearOptimal(cfg, true); err == nil {
			t.Errorf("case %d: NearOptimal accepted", i)
		}
		if _, err := OptimizeAnneal(cfg, AnnealOptions{}); err == nil {
			t.Errorf("case %d: OptimizeAnneal accepted", i)
		}
		if _, err := SimulateWalk(cfg, 1, 100, 0); err == nil {
			t.Errorf("case %d: SimulateWalk accepted", i)
		}
		if _, err := SimulateNetwork(NetworkConfig{Config: cfg, Threshold: 1}, 100); err == nil {
			t.Errorf("case %d: SimulateNetwork accepted", i)
		}
		if _, err := SimulateBaseline(cfg, BaselineLA, 1, 100, 0); err == nil {
			t.Errorf("case %d: SimulateBaseline accepted", i)
		}
	}
}

func TestModelString(t *testing.T) {
	if OneDimensional.String() == "" || TwoDimensional.String() == "" {
		t.Error("empty model names")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown model String did not panic")
		}
	}()
	_ = Model(77).String()
}

func TestUnboundedDelayConstant(t *testing.T) {
	cfg := valid()
	cfg.MaxDelay = Unbounded
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2, U=100, unbounded: d* = 2, C_T = 1.335.
	if res.Best.Threshold != 2 || math.Abs(res.Best.Total-1.335) > 5e-4 {
		t.Errorf("unbounded: %+v", res.Best)
	}
}
