// Package locman is the public API of the library: mobile-terminal
// location management by distance-based location update and
// delay-constrained terminal paging, reproducing Akyildiz & Ho,
// "A Mobile User Location Update and Paging Mechanism Under Delay
// Constraints" (ACM SIGCOMM 1995).
//
// A terminal is described by its per-slot movement probability (MoveProb)
// and call-arrival probability (CallProb) on a one-dimensional or
// two-dimensional (hexagonal) cellular grid. Location updates cost
// UpdateCost each; polling one cell costs PollCost. Given a maximum paging
// delay of MaxDelay polling cycles, the library computes
//
//   - the stationary distribution of the terminal's distance from its last
//     reported cell (Stationary),
//   - the per-slot update, paging and total costs of operating at any
//     threshold distance (Evaluate),
//   - the optimal threshold d* (Optimize, OptimizeAnneal) and the paper's
//     cheap near-optimal d′ (NearOptimal),
//
// and validates the analysis with two simulators: a Monte-Carlo random
// walk on the real grids (SimulateWalk) and a discrete-event PCN system
// with binary signalling messages and an HLR (SimulateNetwork). The
// classic baseline schemes (static location areas, time-based and
// movement-based updating) are available through SimulateBaseline.
//
// # Quick start
//
//	cfg := locman.Config{
//		Model:      locman.TwoDimensional,
//		MoveProb:   0.05,
//		CallProb:   0.01,
//		UpdateCost: 100,
//		PollCost:   10,
//		MaxDelay:   3,
//	}
//	res, err := locman.Optimize(cfg)
//	// res.Best.Threshold is d*, res.Best.Total is C_T(d*, m).
package locman

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/walk"
)

// Model selects the mobility model.
type Model int

const (
	// OneDimensional is the 1-D line model (roads, tunnels, railways):
	// each cell has two neighbors.
	OneDimensional Model = iota
	// TwoDimensional is the 2-D hexagonal model with the exact
	// distance-dependent ring-transition probabilities.
	TwoDimensional
	// TwoDimensionalApprox is the 2-D model with the paper's
	// distance-independent approximation, which admits closed forms; use
	// it when optimization must be cheap (the paper's "near optimal"
	// pipeline uses it internally).
	TwoDimensionalApprox
)

// String names the model.
func (m Model) String() string { return m.chain().String() }

func (m Model) chain() chain.Model {
	switch m {
	case OneDimensional:
		return chain.OneDim
	case TwoDimensional:
		return chain.TwoDimExact
	case TwoDimensionalApprox:
		return chain.TwoDimApprox
	default:
		panic(fmt.Sprintf("locman: unknown model %d", int(m)))
	}
}

// Unbounded is the MaxDelay value meaning paging delay is unconstrained.
const Unbounded = paging.Unbounded

// Partition is a residing-area partitioning scheme. Obtain instances from
// SDF, Blanket, PerRing, EqualCells, OptimalDP or PartitionByName.
type Partition = paging.Scheme

// SDF returns the paper's shortest-distance-first partitioner (the
// default).
func SDF() Partition { return paging.SDF{} }

// Blanket returns the single-cycle whole-area partitioner.
func Blanket() Partition { return paging.Blanket{} }

// PerRing returns the one-ring-per-cycle partitioner.
func PerRing() Partition { return paging.PerRing{} }

// EqualCells returns the cell-balanced partitioner.
func EqualCells() Partition { return paging.EqualCells{} }

// OptimalDP returns the dynamic-programming optimal partitioner (minimum
// expected polled cells under the delay bound).
func OptimalDP() Partition { return paging.OptimalDP{} }

// PartitionByName resolves "sdf", "blanket", "per-ring", "equal-cells" or
// "optimal-dp"; the error for an unknown name enumerates the valid ones.
func PartitionByName(name string) (Partition, error) { return paging.ByName(name) }

// PartitionNames lists the names PartitionByName resolves, for CLI help
// strings and error messages.
func PartitionNames() []string { return paging.Names() }

// Config describes one terminal's location-management problem.
type Config struct {
	// Model selects the grid and chain variant.
	Model Model
	// MoveProb is q: the per-slot probability of moving to a neighboring
	// cell. MoveProb + CallProb must not exceed 1.
	MoveProb float64
	// CallProb is c: the per-slot probability of an incoming call.
	CallProb float64
	// UpdateCost is U, the cost of one location update.
	UpdateCost float64
	// PollCost is V, the cost of polling one cell.
	PollCost float64
	// MaxDelay is m, the maximum paging delay in polling cycles;
	// Unbounded (0) means unconstrained.
	MaxDelay int
	// MaxThreshold bounds threshold searches; 0 means 200.
	MaxThreshold int
	// Partition overrides the paging partitioner; nil means SDF().
	Partition Partition
	// LegacyZeroRate reproduces the paper's published Table 1 and d′
	// numerics, which used the interior transition rate for the update
	// cost at threshold 0; see DESIGN.md §4. Leave false for the faithful
	// equations.
	LegacyZeroRate bool
}

func (c Config) internal() core.Config {
	return core.Config{
		Model:          c.Model.chain(),
		Params:         chain.Params{Q: c.MoveProb, C: c.CallProb},
		Costs:          core.Costs{Update: c.UpdateCost, Poll: c.PollCost},
		MaxDelay:       c.MaxDelay,
		Scheme:         c.Partition,
		LegacyZeroRate: c.LegacyZeroRate,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Model {
	case OneDimensional, TwoDimensional, TwoDimensionalApprox:
	default:
		return fmt.Errorf("locman: unknown model %d", int(c.Model))
	}
	if c.MaxThreshold < 0 {
		return fmt.Errorf("locman: negative MaxThreshold %d", c.MaxThreshold)
	}
	return c.internal().Validate()
}

// Breakdown is the evaluated cost of one (threshold, delay) operating
// point; see the field documentation in this package's Result type.
type Breakdown = core.Breakdown

// Result is the outcome of a threshold optimization: the best Breakdown,
// the scanned cost curve (when applicable) and the number of cost
// evaluations.
type Result = core.Result

// AnnealOptions tunes OptimizeAnneal; the zero value selects the paper's
// defaults.
type AnnealOptions = core.AnnealOptions

// Stationary returns the steady-state probabilities p_0..p_d of the
// terminal's ring distance from its last reported cell under threshold d.
func Stationary(m Model, moveProb, callProb float64, d int) ([]float64, error) {
	return chain.Stationary(m.chain(), chain.Params{Q: moveProb, C: callProb}, d)
}

// StationaryClosedForm is like Stationary but uses the paper's closed-form
// solution; it applies to OneDimensional and TwoDimensionalApprox only.
func StationaryClosedForm(m Model, moveProb, callProb float64, d int) ([]float64, error) {
	return chain.StationaryClosedForm(m.chain(), chain.Params{Q: moveProb, C: callProb}, d)
}

// Evaluate computes the cost breakdown of operating at threshold d.
func Evaluate(cfg Config, d int) (Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	return cfg.internal().Evaluate(d)
}

// Optimize finds the optimal threshold d* by exhaustive scan over
// 0..MaxThreshold (the paper's first method; immune to the local minima of
// the SDF cost curve).
func Optimize(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return core.Scan(cfg.internal(), cfg.MaxThreshold)
}

// OptimizeAnneal finds a (near-)optimal threshold by the paper's simulated
// annealing procedure.
func OptimizeAnneal(cfg Config, opts AnnealOptions) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if opts.MaxThreshold == 0 {
		opts.MaxThreshold = cfg.MaxThreshold
	}
	return core.Anneal(cfg.internal(), opts)
}

// NearOptimal runs the paper's low-computation pipeline: choose d′ with
// the approximate closed forms, optionally apply the 0→1 correction
// (correct=true, recommended), and price d′ with the exact model.
func NearOptimal(cfg Config, correct bool) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return core.NearOptimal(cfg.internal(), cfg.MaxThreshold, correct)
}

// WalkResult is the outcome of a Monte-Carlo walk simulation; per-slot
// costs are directly comparable with Breakdown.
type WalkResult = walk.Result

// SimulateWalk runs the mechanism over a random walk on the real cell grid
// for the given slots and seed.
func SimulateWalk(cfg Config, d int, slots int64, seed uint64) (WalkResult, error) {
	if err := cfg.Validate(); err != nil {
		return WalkResult{}, err
	}
	return walk.Run(cfg.internal(), d, slots, seed)
}

// SimulateWalkParallel is SimulateWalk split across the given number of
// independent worker streams and merged; statistically equivalent, but the
// wall-clock time divides by the worker count. Deterministic for a fixed
// (seed, workers) pair.
func SimulateWalkParallel(cfg Config, d int, slots int64, seed uint64, workers int) (WalkResult, error) {
	if err := cfg.Validate(); err != nil {
		return WalkResult{}, err
	}
	return walk.RunParallel(cfg.internal(), d, slots, seed, workers)
}

// NetworkConfig configures the discrete-event PCN system simulation.
type NetworkConfig struct {
	// Config embeds the analytical problem description.
	Config
	// Terminals is the population size (default 1).
	Terminals int
	// Threshold is the static threshold; negative means network-optimized
	// once from Config's parameters.
	Threshold int
	// Dynamic enables per-terminal online estimation and periodic
	// near-optimal re-optimization.
	Dynamic bool
	// ReoptimizeEvery is the dynamic re-optimization period in slots
	// (default 2000).
	ReoptimizeEvery int64
	// PerTerminal optionally supplies heterogeneous (moveProb, callProb)
	// per terminal index. Mutually exclusive with Fleet; prefer Fleet,
	// which is declarative (expressible in a job Spec) and validated up
	// front.
	PerTerminal func(i int) (moveProb, callProb float64)
	// Fleet optionally declares a heterogeneous population as data; see
	// Fleet. Mutually exclusive with PerTerminal.
	Fleet *Fleet
	// Scheme selects the location-update trigger: nil means the paper's
	// distance scheme. TimerUpdate and MovementUpdate select the
	// comparative literature's alternatives; Threshold keeps its meaning
	// as the paging radius in every scheme. See UpdateScheme.
	Scheme UpdateScheme
	// UpdateLossProb injects signalling failures: each location-update
	// message is lost with this probability, forcing occasional
	// expanding-ring fallback paging (see NetworkMetrics.FallbackCalls).
	//
	// Deprecated: set Faults.UpdateLoss instead, which it aliases; a
	// nonzero UpdateLossProb is folded into Faults when Faults.UpdateLoss
	// is zero.
	UpdateLossProb float64
	// Faults injects the full fault model — update/poll/reply loss, HLR
	// outage windows — and configures the recovery machinery (acked
	// updates with retransmission, recovery paging rounds, dropped-call
	// accounting). The zero value is a perfect signalling plane.
	Faults FaultPlan
	// SnapshotEvery switches on run telemetry: every SnapshotEvery slots
	// the simulation captures a cumulative snapshot Frame into
	// NetworkMetrics.Snapshots (plus one final frame at the run boundary).
	// The series is shard-count invariant like every other aggregate.
	// Zero disables the series; the latency histograms are always on.
	SnapshotEvery int64
	// Progress optionally receives live per-shard progress counters
	// (current slot, events processed) updated atomically while the
	// simulation runs; poll it with Progress.Snapshot from another
	// goroutine. Nil disables progress reporting.
	Progress *Progress
	// Seed seeds the deterministic simulation.
	Seed uint64
	// Engine selects the simulation engine: EngineFast (the zero value)
	// is the slot-batched fast path, EngineDES the reference event-driven
	// engine, EngineCols the columnar cohort engine for very large
	// populations. All produce bit-identical metrics, telemetry series
	// and histograms for every configuration; the choice is purely speed.
	Engine Engine
}

// Engine selects the PCN simulation engine implementation; see
// NetworkConfig.Engine.
type Engine = sim.Engine

// Engine implementations.
const (
	// EngineFast is the slot-batched fast path (the default).
	EngineFast = sim.EngineFast
	// EngineDES is the reference event-driven engine.
	EngineDES = sim.EngineDES
	// EngineCols is the columnar cohort engine: flat per-terminal state
	// columns walked in cache-sized cohorts with geometric gap-sampling.
	EngineCols = sim.EngineCols
)

// EngineByName resolves "fast", "des" or "cols", for CLI flags; the
// error for an unknown name enumerates the valid ones.
func EngineByName(name string) (Engine, error) { return sim.EngineByName(name) }

// EngineNames lists the names EngineByName resolves, for CLI help
// strings and error messages.
func EngineNames() []string { return sim.EngineNames() }

// UpdateScheme selects the location-update trigger — the "when does the
// terminal report its location" half of the mechanism. Whatever the
// trigger, NetworkConfig.Threshold keeps its meaning as the paging
// radius. Obtain instances from DistanceUpdate, TimerUpdate,
// MovementUpdate or UpdateSchemeByName; see sim.UpdateScheme for the
// full semantics.
type UpdateScheme = sim.UpdateScheme

// DistanceUpdate returns the paper's distance-based trigger (the
// default): update when the distance from the registered center exceeds
// the threshold.
func DistanceUpdate() UpdateScheme { return sim.DistanceScheme{} }

// TimerUpdate returns the timer-based trigger: update every `every`
// slots since the last contact with the network.
func TimerUpdate(every int64) UpdateScheme { return sim.TimerScheme{Every: every} }

// MovementUpdate returns the movement-based trigger: update after count
// cell crossings since the last contact.
func MovementUpdate(count int64) UpdateScheme { return sim.MovementScheme{Count: count} }

// UpdateSchemeByName resolves "distance", "timer" or "movement" with its
// operating parameter (0 for distance), for CLI flags and job specs; the
// error for an unknown name enumerates the valid ones.
func UpdateSchemeByName(name string, param int64) (UpdateScheme, error) {
	return sim.SchemeByName(name, param)
}

// UpdateSchemeNames lists the names UpdateSchemeByName resolves, for CLI
// help strings and error messages.
func UpdateSchemeNames() []string { return sim.SchemeNames() }

// FaultPlan configures fault injection and recovery for the PCN system
// simulation; see the sim package for field semantics.
type FaultPlan = sim.FaultPlan

// Outage is one scheduled HLR outage window in slots [Start, End).
type Outage = sim.Outage

// NetworkMetrics is the outcome of a PCN system simulation, including
// signalling byte counts and the paging delay distribution.
type NetworkMetrics = sim.Metrics

// Frame is one cumulative run-telemetry snapshot; see
// NetworkConfig.SnapshotEvery.
type Frame = telemetry.Frame

// Summary is the five-number statistical summary a Frame carries for the
// delay and recovery-latency streams.
type Summary = telemetry.Summary

// Hist is a fixed-bucket latency histogram with deterministic merge; see
// NetworkMetrics.DelayHist and NetworkMetrics.RecoveryHist.
type Hist = telemetry.Hist

// Progress publishes live per-shard simulation progress; see
// NetworkConfig.Progress.
type Progress = telemetry.Progress

// ShardStatus is one shard's progress as reported by Progress.Snapshot.
type ShardStatus = telemetry.ShardStatus

func (cfg NetworkConfig) simConfig() (sim.Config, error) {
	sc := sim.Config{
		Core:            cfg.internal(),
		Terminals:       cfg.Terminals,
		Threshold:       cfg.Threshold,
		Dynamic:         cfg.Dynamic,
		ReoptimizeEvery: cfg.ReoptimizeEvery,
		MaxThreshold:    cfg.MaxThreshold,
		Scheme:          cfg.Scheme,
		Faults:          cfg.Faults,
		Telemetry: telemetry.Config{
			SnapshotEvery: cfg.SnapshotEvery,
			Progress:      cfg.Progress,
		},
		Seed:   cfg.Seed,
		Engine: cfg.Engine,
	}
	if sc.Faults.UpdateLoss == 0 {
		sc.Faults.UpdateLoss = cfg.UpdateLossProb
	}
	switch {
	case cfg.Fleet != nil && cfg.PerTerminal != nil:
		return sim.Config{}, fmt.Errorf("locman: Fleet and PerTerminal are mutually exclusive")
	case cfg.Fleet != nil:
		// A fleet is rejected whole before the run starts: every group's
		// jitter extremes must be valid parameters, so no terminal can be
		// built invalid (the per-terminal shard-build check then never
		// fires for fleets).
		if err := cfg.Fleet.Validate(); err != nil {
			return sim.Config{}, err
		}
		per := cfg.Fleet.perTerminal(cfg.Seed)
		sc.PerTerminal = func(i int) chain.Params {
			q, c := per(i)
			return chain.Params{Q: q, C: c}
		}
	case cfg.PerTerminal != nil:
		sc.PerTerminal = func(i int) chain.Params {
			q, c := cfg.PerTerminal(i)
			return chain.Params{Q: q, C: c}
		}
	}
	return sc, nil
}

// SimulateNetwork runs the PCN system simulator for the given slots.
func SimulateNetwork(cfg NetworkConfig, slots int64) (*NetworkMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.Run(sc, slots)
}

// SimulateNetworkSharded is SimulateNetwork with the terminal population
// partitioned across shards independent discrete-event engines running in
// parallel. Results are bit-identical to SimulateNetwork for any shard
// count — per-terminal RNG streams are addressed by (Seed, terminal id),
// so determinism does not depend on the partition — while wall-clock time
// divides by the available cores. shards 0 selects GOMAXPROCS; negative
// values are rejected; shard counts beyond Terminals are clamped.
func SimulateNetworkSharded(cfg NetworkConfig, slots int64, shards int) (*NetworkMetrics, error) {
	return SimulateNetworkShardedCtx(context.Background(), cfg, slots, shards)
}

// SimulateNetworkShardedCtx is SimulateNetworkSharded under cooperative
// cancellation: cancelling ctx stops in-flight shards within a bounded
// amount of work and returns ctx.Err() instead of waiting for run
// completion. A run that finishes normally is bit-identical to
// SimulateNetworkSharded — the context machinery never perturbs the
// simulation. This is the entry point long-running services (pcnserve)
// use to honour job cancellation and per-job deadlines.
func SimulateNetworkShardedCtx(ctx context.Context, cfg NetworkConfig, slots int64, shards int) (*NetworkMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.RunShardedCtx(ctx, sc, slots, shards)
}

// BaselineScheme identifies a comparison scheme for SimulateBaseline.
type BaselineScheme = baseline.Scheme

// Baseline schemes (see package documentation): static location areas,
// periodic time-based updates, movement-count updates, and distance-based
// updates (this paper's trigger).
const (
	BaselineLA            = baseline.LA
	BaselineTimeBased     = baseline.TimeBased
	BaselineMovementBased = baseline.MovementBased
	BaselineDistanceBased = baseline.DistanceBased
)

// BaselineResult is the outcome of a baseline simulation.
type BaselineResult = baseline.Result

// SimulateBaseline evaluates a classic scheme under cfg's workload. param
// is scheme-specific: LA size/radius, update period τ, movement count M,
// or distance threshold d.
func SimulateBaseline(cfg Config, scheme BaselineScheme, param int, slots int64, seed uint64) (BaselineResult, error) {
	if err := cfg.Validate(); err != nil {
		return BaselineResult{}, err
	}
	kind := grid.TwoDimHex
	if cfg.Model == OneDimensional {
		kind = grid.OneDim
	}
	return baseline.Simulate(baseline.Config{
		Kind:     kind,
		Params:   chain.Params{Q: cfg.MoveProb, C: cfg.CallProb},
		Costs:    core.Costs{Update: cfg.UpdateCost, Poll: cfg.PollCost},
		Scheme:   scheme,
		Param:    param,
		MaxDelay: cfg.MaxDelay,
	}, slots, seed)
}
