package locman

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/stats"
)

// fleetSeedSalt decorrelates the fleet's parameter-jitter streams from
// the simulation's per-terminal event streams: terminal i's jittered
// parameters come from stats.SubStream(Seed^fleetSeedSalt, i), while its
// movement/call draws come from stats.SubStream(Seed, i). The constant is
// the 64-bit golden-ratio increment, the same family of salts SplitMix64
// itself uses.
const fleetSeedSalt = 0x9E3779B97F4A7C15

// FleetGroup describes one behavioural class of terminals: base per-slot
// movement and call probabilities plus optional relative jitter that
// individualizes each member around the base.
type FleetGroup struct {
	// MoveProb and CallProb are the group's base q and c.
	MoveProb float64
	CallProb float64
	// QJitter and CJitter spread each member's parameters uniformly over
	// [base·(1−j), base·(1+j)], drawn from the terminal's own parameter
	// SubStream so the value depends only on (Seed, terminal id) — never
	// on the shard partition or population ordering. Both must lie in
	// [0, 1]; zero means every member uses the base exactly.
	QJitter float64
	CJitter float64
}

// Fleet declares a heterogeneous terminal population: terminal i belongs
// to Groups[i mod len(Groups)], so the classes interleave evenly at any
// population size. A Fleet is pure data — unlike the PerTerminal
// callback it can live in a job Spec, travel over the wire, and be
// validated up front — and it is the substrate the scenario registry's
// mixed populations build on.
type Fleet struct {
	Groups []FleetGroup
}

// Validate rejects fleets whose parameters could leave [0, 1] or exceed
// q + c ≤ 1 at any jitter extreme, naming the offending group. Validity
// at both extremes implies validity everywhere in between, so a fleet
// that passes can never produce an invalid terminal.
func (f *Fleet) Validate() error {
	if f == nil || len(f.Groups) == 0 {
		return errors.New("locman: fleet has no groups")
	}
	for gi, g := range f.Groups {
		if !(g.QJitter >= 0 && g.QJitter <= 1) {
			return fmt.Errorf("locman: fleet group %d: move-probability jitter %v outside [0, 1]", gi, g.QJitter)
		}
		if !(g.CJitter >= 0 && g.CJitter <= 1) {
			return fmt.Errorf("locman: fleet group %d: call-probability jitter %v outside [0, 1]", gi, g.CJitter)
		}
		for _, p := range []chain.Params{
			{Q: g.MoveProb * (1 - g.QJitter), C: g.CallProb * (1 - g.CJitter)},
			{Q: g.MoveProb * (1 + g.QJitter), C: g.CallProb * (1 + g.CJitter)},
		} {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("locman: fleet group %d: %w", gi, err)
			}
		}
	}
	return nil
}

// perTerminal compiles the fleet into the PerTerminal closure the
// simulator consumes. Groups without jitter take no draws at all, so a
// jitter-free fleet reproduces its base parameters exactly (HeteroFleet
// relies on this to match the historical -hetero closure bit for bit).
func (f *Fleet) perTerminal(seed uint64) func(i int) (float64, float64) {
	groups := append([]FleetGroup(nil), f.Groups...)
	return func(i int) (float64, float64) {
		g := groups[i%len(groups)]
		q, c := g.MoveProb, g.CallProb
		if g.QJitter != 0 || g.CJitter != 0 {
			var r stats.RNG
			r.SeedSubStream(seed^fleetSeedSalt, uint64(i))
			q *= 1 + g.QJitter*(2*r.Float64()-1)
			c *= 1 + g.CJitter*(2*r.Float64()-1)
		}
		return q, c
	}
}

// HeteroFleet is the pcnsim -hetero population as a declarative fleet:
// eleven groups whose movement probabilities ramp from 0.5x to 1.5x of
// the base, all sharing the base call probability. Terminal i mod 11
// picks the group, reproducing the historical hardcoded closure
// bit-identically — the CLI, the jobs Spec and the scenario registry all
// express -hetero through this one constructor, which closes the
// CLI↔service parity hole.
func HeteroFleet(moveProb, callProb float64) *Fleet {
	groups := make([]FleetGroup, 11)
	for g := range groups {
		f := 0.5 + float64(g)/10.0 // 0.5x .. 1.5x
		groups[g] = FleetGroup{MoveProb: moveProb * f, CallProb: callProb}
	}
	return &Fleet{Groups: groups}
}
