package locman

import (
	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
)

// EvaluateGrouped computes the cost of operating at threshold d with the
// probability-ordered optimal paging grouping (the strongest form of the
// paper's future-work item): rings are polled in decreasing per-cell
// probability and grouped optimally under the delay bound, so the paging
// cost is never above — and often below — the SDF partition's.
func EvaluateGrouped(cfg Config, d int) (Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	return cfg.internal().EvaluateGrouped(d)
}

// OptimizeGrouped finds the optimal threshold under the probability-
// ordered optimal grouping.
func OptimizeGrouped(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return core.ScanGrouped(cfg.internal(), cfg.MaxThreshold)
}

// DelayDistribution returns the probability that a call is resolved in
// exactly cycle j+1 (index j) when operating at threshold d.
func DelayDistribution(cfg Config, d int) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg.internal().DelayDistribution(d)
}

// OptimizeMeanDelay finds the cheapest (threshold, delay-bound) pair whose
// *expected* paging delay does not exceed meanDelay cycles — a soft-QoS
// alternative to the paper's worst-case bound. The chosen worst-case bound
// is the returned Breakdown's MaxCycles.
func OptimizeMeanDelay(cfg Config, meanDelay float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return core.OptimizeMeanDelay(cfg.internal(), meanDelay, cfg.MaxThreshold)
}

// BaselineAnalysis holds a baseline scheme's analytical costs; see
// SimulateBaseline for the simulated counterpart.
type BaselineAnalysis = baseline.Analysis

// AnalyzeBaseline computes the analytical per-slot costs of a baseline
// scheme (location-area, time-based or movement-based) under cfg's
// workload; distance-based is the paper's own mechanism, handled exactly
// by Evaluate/Optimize.
func AnalyzeBaseline(cfg Config, scheme BaselineScheme, param int) (BaselineAnalysis, error) {
	if err := cfg.Validate(); err != nil {
		return BaselineAnalysis{}, err
	}
	return baseline.Analyze(baselineConfig(cfg, scheme, param))
}

// OptimalLocationArea returns the location-area size (1-D) or cluster
// radius (2-D) minimizing the analytical LA-scheme cost, with its
// analysis. In 1-D this follows the classic square-root law
// L* ≈ √(qU/(cV)).
func OptimalLocationArea(cfg Config, maxParam int) (int, BaselineAnalysis, error) {
	if err := cfg.Validate(); err != nil {
		return 0, BaselineAnalysis{}, err
	}
	return baseline.OptimalLA(baselineConfig(cfg, BaselineLA, 1), maxParam)
}

// RingCycles returns, for each ring 0..d of the residing area, the 0-based
// polling cycle that pages it under cfg's partitioning scheme and delay
// bound — the data needed to visualize or implement the paging plan.
func RingCycles(cfg Config, d int) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ic := cfg.internal()
	pi, err := chain.Stationary(ic.Model, ic.Params, d)
	if err != nil {
		return nil, err
	}
	rings := ic.Model.Grid().RingSizes(d)
	scheme := cfg.Partition
	if scheme == nil {
		scheme = SDF()
	}
	part := scheme.Partition(rings, pi, cfg.MaxDelay)
	out := make([]int, d+1)
	for j, s := range part {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			out[i] = j
		}
	}
	return out, nil
}

func baselineConfig(cfg Config, scheme BaselineScheme, param int) baseline.Config {
	kind := grid.TwoDimHex
	if cfg.Model == OneDimensional {
		kind = grid.OneDim
	}
	return baseline.Config{
		Kind:     kind,
		Params:   chain.Params{Q: cfg.MoveProb, C: cfg.CallProb},
		Costs:    core.Costs{Update: cfg.UpdateCost, Poll: cfg.PollCost},
		Scheme:   scheme,
		Param:    param,
		MaxDelay: cfg.MaxDelay,
	}
}
