package locman

import (
	"fmt"
	"strings"
)

// Scenario is a named, self-contained modelling situation: the
// analytical parameters (grid, probabilities, costs, delay bound), the
// update scheme, an optional heterogeneous fleet and an optional fault
// plan. A scenario deliberately fixes only the *model*; the run shape —
// population size, slot count, seed, shard count, engine, telemetry —
// stays with the caller, so the same scenario scales from a smoke test
// to a million-terminal run without redefinition.
//
// The registry (Scenarios, ScenarioByName) is shared by pcnsim
// (-scenario), pcnctl and the jobs Spec, so a scenario named anywhere
// resolves to the same configuration everywhere — the same determinism
// contract the engines already keep.
type Scenario struct {
	// Name is the registry key (ScenarioByName); Description is one line
	// for CLI listings.
	Name        string
	Description string
	// Config carries the analytical parameters. When Fleet is set,
	// Config.MoveProb/CallProb are the network's average view — what the
	// fixed network optimizes thresholds and paging plans from, since it
	// cannot know individual behaviour a priori.
	Config Config
	// Scheme is the update trigger; nil means distance.
	Scheme UpdateScheme
	// Fleet, when non-nil, declares the heterogeneous population.
	Fleet *Fleet
	// Faults, when non-zero, injects the scenario's signalling faults.
	Faults FaultPlan
}

// Network returns a NetworkConfig loaded with the scenario's fixed model
// parameters and a network-optimized threshold (-1). The caller fills
// the run shape: Terminals, Seed, SnapshotEvery, Engine — and may
// override Threshold, which keeps its paging-radius meaning in every
// scheme.
func (s Scenario) Network() NetworkConfig {
	return NetworkConfig{
		Config:    s.Config,
		Threshold: -1,
		Scheme:    s.Scheme,
		Fleet:     s.Fleet,
		Faults:    s.Faults,
	}
}

// Scenarios lists the registered scenarios in registry order. The slice
// is freshly built per call; callers may modify it.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "the paper's reference workload: 2-D grid, q=0.05, c=0.01, U=100, V=10, m=3, distance updates",
			Config: Config{
				Model:      TwoDimensional,
				MoveProb:   0.05,
				CallProb:   0.01,
				UpdateCost: 100,
				PollCost:   10,
				MaxDelay:   3,
			},
		},
		{
			Name:        "rush-hour-hotspot",
			Description: "dense 2-D cell cluster at rush hour: high mobility and call load with wide per-user spread, tight delay bound",
			Config: Config{
				Model:      TwoDimensional,
				MoveProb:   0.35,
				CallProb:   0.08,
				UpdateCost: 100,
				PollCost:   10,
				MaxDelay:   2,
			},
			Fleet: &Fleet{Groups: []FleetGroup{
				{MoveProb: 0.35, CallProb: 0.08, QJitter: 0.4, CJitter: 0.5},
			}},
		},
		{
			Name:        "highway-commute",
			Description: "1-D highway corridor: fast directional motion under movement-based updates (M=6), cheap line paging",
			Config: Config{
				Model:      OneDimensional,
				MoveProb:   0.45,
				CallProb:   0.01,
				UpdateCost: 100,
				PollCost:   5,
				MaxDelay:   3,
			},
			Scheme: MovementUpdate(6),
		},
		{
			Name:        "mixed-fleet",
			Description: "pedestrians, vehicles and couriers interleaved, each member's q/c drawn from its own parameter SubStream",
			Config: Config{
				// The network's average view of the mixed population.
				Model:      TwoDimensional,
				MoveProb:   0.15,
				CallProb:   0.02,
				UpdateCost: 100,
				PollCost:   10,
				MaxDelay:   3,
			},
			Fleet: &Fleet{Groups: []FleetGroup{
				{MoveProb: 0.02, CallProb: 0.015, QJitter: 0.6, CJitter: 0.5}, // pedestrians
				{MoveProb: 0.3, CallProb: 0.01, QJitter: 0.3},                 // vehicles
				{MoveProb: 0.15, CallProb: 0.05, QJitter: 0.5, CJitter: 0.4},  // couriers
			}},
		},
		{
			Name:        "flash-crowd",
			Description: "call storm with a lossy signalling plane and an HLR outage, timer updates (T=400) riding the recovery machinery",
			Config: Config{
				Model:      TwoDimensional,
				MoveProb:   0.1,
				CallProb:   0.12,
				UpdateCost: 50,
				PollCost:   1,
				MaxDelay:   1,
			},
			Scheme: TimerUpdate(400),
			Faults: FaultPlan{
				UpdateLoss:    0.05,
				UpdateRetries: 2,
				Outages:       []Outage{{Start: 500, End: 650}},
			},
		},
	}
}

// ScenarioNames lists the registered names in registry order, for CLI
// help strings and error messages.
func ScenarioNames() []string {
	scs := Scenarios()
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName resolves a registered scenario; the error for an
// unknown name enumerates every valid one, matching EngineByName style.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("locman: unknown scenario %q (valid scenarios: %s)",
		name, strings.Join(ScenarioNames(), ", "))
}
