package locman

import (
	"context"

	"repro/internal/sim"
)

// Checkpoint is a serializable snapshot of a network simulation at a
// slot boundary, sufficient to resume the run with bit-identical final
// results; see sim.Checkpoint for the determinism contract.
type Checkpoint = sim.Checkpoint

// EncodeCheckpoint serializes a checkpoint to a self-checking byte
// format (magic header, gob payload, CRC32 trailer).
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) { return sim.EncodeCheckpoint(cp) }

// DecodeCheckpoint parses bytes produced by EncodeCheckpoint, rejecting
// unknown formats and corrupted payloads.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return sim.DecodeCheckpoint(data) }

// SimulateNetworkCheckpointed is SimulateNetworkShardedCtx with periodic
// checkpoint capture: every multiple of every slots (interior boundaries
// only), a consistent whole-run Checkpoint is handed to sink, in
// increasing slot order, from a shard goroutine. Checkpointing never
// perturbs the simulation: the returned metrics are bit-identical to an
// unobserved run.
func SimulateNetworkCheckpointed(ctx context.Context, cfg NetworkConfig, slots int64, shards int, every int64, sink func(*Checkpoint)) (*NetworkMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.RunShardedOpts(ctx, sc, slots, shards, sim.RunOpts{
		CheckpointEvery: every,
		CheckpointSink:  sink,
	})
}

// ResumeNetworkCheckpointed continues a run from cp instead of slot 0,
// optionally emitting further checkpoints (every > 0). The configuration
// must describe the same run the checkpoint was taken from (slots, seed,
// shard count, starting threshold, engine class); the final metrics —
// and hence the Report built from them — are then byte-identical to an
// uninterrupted run. shards 0 adopts the checkpoint's shard count.
func ResumeNetworkCheckpointed(ctx context.Context, cfg NetworkConfig, slots int64, shards int, cp *Checkpoint, every int64, sink func(*Checkpoint)) (*NetworkMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.RunShardedOpts(ctx, sc, slots, shards, sim.RunOpts{
		Resume:          cp,
		CheckpointEvery: every,
		CheckpointSink:  sink,
	})
}
