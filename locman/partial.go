package locman

import (
	"context"

	"repro/internal/sim"
)

// Partial is the serializable outcome of running a contiguous slice of
// the shards of a sharded network simulation — the unit of work a
// cluster worker executes and ships to its coordinator. See sim.Partial
// for the cross-machine determinism contract.
type Partial = sim.Partial

// ShardPartial is one global shard's share of a Partial.
type ShardPartial = sim.ShardPartial

// PartialMismatchError reports a partial that does not describe the run
// it is being merged into (different slots, shard count or seed, or a
// shard slice that does not tile the partition); match it with
// errors.As.
type PartialMismatchError = sim.PartialMismatchError

// SimulateNetworkSlice runs shards [lo, hi) of a shards-way partition of
// the configured population: the worker half of a distributed run. The
// shard geometry is derived exactly as SimulateNetworkSharded derives
// it, so the partial is bit-identical to the same shards' share of a
// single-node run; shards must be explicit (a GOMAXPROCS default would
// differ across machines). Cancelling ctx stops in-flight shards within
// a bounded amount of work.
func SimulateNetworkSlice(ctx context.Context, cfg NetworkConfig, slots int64, shards, lo, hi int) (*Partial, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.RunPartial(ctx, sc, slots, shards, lo, hi)
}

// MergeNetworkPartials folds a complete set of partials — every shard of
// the shards-way partition exactly once, in any grouping and order —
// into the NetworkMetrics a single-node SimulateNetworkSharded of the
// same configuration would produce, bit for bit. Partials from a
// different run shape are rejected with *PartialMismatchError.
func MergeNetworkPartials(cfg NetworkConfig, slots int64, shards int, parts []*Partial) (*NetworkMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc, err := cfg.simConfig()
	if err != nil {
		return nil, err
	}
	return sim.MergePartials(sc, slots, shards, parts)
}

// EncodePartial serializes a partial to a self-checking byte format
// (magic header, gob payload, CRC32 trailer); float64 state round-trips
// bit-for-bit across machines.
func EncodePartial(p *Partial) ([]byte, error) { return sim.EncodePartial(p) }

// DecodePartial parses bytes produced by EncodePartial, rejecting
// unknown formats and corrupted payloads. Validate the result with
// Partial.Validate before merging it.
func DecodePartial(data []byte) (*Partial, error) { return sim.DecodePartial(data) }
