package locman_test

import (
	"fmt"
	"log"

	"repro/locman"
)

// The paper's Table 2 entry U=100, m=3: optimal threshold 2, cost 1.335.
func ExampleOptimize() {
	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
	}
	res, err := locman.Optimize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("d* = %d, C_T = %.3f\n", res.Best.Threshold, res.Best.Total)
	// Output:
	// d* = 2, C_T = 1.335
}

// Cost breakdown of one operating point.
func ExampleEvaluate() {
	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   1,
	}
	b, err := locman.Evaluate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update %.3f + paging %.3f = %.3f\n", b.Update, b.Paging, b.Total)
	// Output:
	// update 1.339 + paging 0.700 = 2.039
}

// The stationary distribution of the terminal's distance from its center
// cell (paper eqs. 56-57 for d=1).
func ExampleStationary() {
	pi, err := locman.Stationary(locman.TwoDimensional, 0.05, 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p0 = %.4f, p1 = %.4f\n", pi[0], pi[1])
	// Output:
	// p0 = 0.4643, p1 = 0.5357
}

// The near-optimal closed-form pipeline with the paper's 0→1 correction.
func ExampleNearOptimal() {
	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 20,
		PollCost:   10,
		MaxDelay:   1,
		// The paper's published d′ numbers used the legacy d=0 rate.
		LegacyZeroRate: true,
	}
	uncorrected, err := locman.NearOptimal(cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	corrected, err := locman.NearOptimal(cfg, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncorrected d' = %d costs %.3f\n", uncorrected.Best.Threshold, uncorrected.Best.Total)
	fmt.Printf("corrected   d' = %d costs %.3f\n", corrected.Best.Threshold, corrected.Best.Total)
	// Output:
	// uncorrected d' = 0 costs 1.100
	// corrected   d' = 1 costs 0.968
}

// How long paging takes, cycle by cycle.
func ExampleDelayDistribution() {
	cfg := locman.Config{
		Model:      locman.TwoDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
	}
	dist, err := locman.DelayDistribution(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	for j, p := range dist {
		fmt.Printf("cycle %d: %.3f\n", j+1, p)
	}
	// Output:
	// cycle 1: 0.314
	// cycle 2: 0.435
	// cycle 3: 0.251
}

// The classic location-area baseline admits a closed-form analysis; in
// 1-D its optimum follows the square-root law L* ≈ √(qU/(cV)).
func ExampleOptimalLocationArea() {
	cfg := locman.Config{
		Model:      locman.OneDimensional,
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
	}
	size, analysis, err := locman.OptimalLocationArea(cfg, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L* = %d cells, C_T = %.3f\n", size, analysis.TotalCost)
	// Output:
	// L* = 7 cells, C_T = 1.414
}
