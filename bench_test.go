// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7), plus ablations for the design choices called out in
// DESIGN.md: closed-form vs generic solvers, scan vs annealing vs
// near-optimal optimization, SDF vs alternative paging partitions, and the
// simulators' slot throughput.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/markov"
	"repro/internal/paging"
	"repro/internal/paperdata"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/walk"
	"repro/internal/wire"
)

var tableParams = chain.Params{Q: paperdata.TableMoveProb, C: paperdata.TableCallProb}

// --- Experiment benchmarks: one per paper table/figure --------------------

// BenchmarkTable1 regenerates the paper's Table 1: for every U row and
// every delay column of the 1-D model, scan for the optimal threshold.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range paperdata.Table1 {
			for _, m := range paperdata.Table1Delays {
				cfg := core.Config{
					Model:          chain.OneDim,
					Params:         tableParams,
					Costs:          core.Costs{Update: row.U, Poll: paperdata.TablePollCost},
					MaxDelay:       m,
					LegacyZeroRate: true,
				}
				res, err := core.Scan(cfg, 100)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best.Total <= 0 {
					b.Fatal("degenerate result")
				}
			}
		}
	}
	b.ReportMetric(float64(len(paperdata.Table1)*len(paperdata.Table1Delays)), "cells/op")
}

// BenchmarkTable2 regenerates the paper's Table 2: the exact 2-D optimum
// and the near-optimal closed-form pipeline for every cell.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range paperdata.Table2 {
			for _, m := range paperdata.Table2Delays {
				costs := core.Costs{Update: row.U, Poll: paperdata.TablePollCost}
				exact := core.Config{Model: chain.TwoDimExact, Params: tableParams, Costs: costs, MaxDelay: m}
				if _, err := core.Scan(exact, 60); err != nil {
					b.Fatal(err)
				}
				near := exact
				near.LegacyZeroRate = true
				if _, err := core.NearOptimal(near, 60, false); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(len(paperdata.Table2)*len(paperdata.Table2Delays)), "cells/op")
}

func benchFigure(b *testing.B, model chain.Model, sweepQ bool) {
	b.Helper()
	xs := paperdata.Fig4MoveProbs
	if !sweepQ {
		xs = paperdata.Fig5CallProbs
	}
	for i := 0; i < b.N; i++ {
		for _, m := range paperdata.FigDelays {
			for _, x := range xs {
				params := chain.Params{Q: x, C: paperdata.Fig4CallProb}
				if !sweepQ {
					params = chain.Params{Q: paperdata.Fig5MoveProb, C: x}
				}
				cfg := core.Config{
					Model:    model,
					Params:   params,
					Costs:    core.Costs{Update: paperdata.FigUpdateCost, Poll: paperdata.FigPollCost},
					MaxDelay: m,
				}
				if _, err := core.Scan(cfg, 100); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(len(paperdata.FigDelays)*len(xs)), "points/op")
}

// BenchmarkFig4a regenerates Figure 4(a): 1-D optimal cost vs movement
// probability for four delay bounds.
func BenchmarkFig4a(b *testing.B) { benchFigure(b, chain.OneDim, true) }

// BenchmarkFig4b regenerates Figure 4(b): the 2-D exact model.
func BenchmarkFig4b(b *testing.B) { benchFigure(b, chain.TwoDimExact, true) }

// BenchmarkFig5a regenerates Figure 5(a): 1-D optimal cost vs call
// probability.
func BenchmarkFig5a(b *testing.B) { benchFigure(b, chain.OneDim, false) }

// BenchmarkFig5b regenerates Figure 5(b): the 2-D exact model.
func BenchmarkFig5b(b *testing.B) { benchFigure(b, chain.TwoDimExact, false) }

// --- Solver ablations ------------------------------------------------------

// BenchmarkStationaryCutSolver measures the O(d) cut-balance solver.
func BenchmarkStationaryCutSolver(b *testing.B) {
	for _, d := range []int{5, 20, 100} {
		b.Run(sizeName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.Stationary(chain.TwoDimExact, tableParams, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStationaryClosedForm measures the paper's closed form (1-D and
// approximate 2-D).
func BenchmarkStationaryClosedForm(b *testing.B) {
	for _, d := range []int{5, 20, 100} {
		b.Run(sizeName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.StationaryClosedForm(chain.TwoDimApprox, tableParams, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStationaryDense measures the generic dense Gaussian solver on
// the same chain, quantifying what the structured solver saves.
func BenchmarkStationaryDense(b *testing.B) {
	for _, d := range []int{5, 20, 100} {
		b.Run(sizeName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mc, err := markov.DistanceChain(chain.TwoDimExact, tableParams, d)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mc.Stationary(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(d int) string {
	switch d {
	case 5:
		return "d=5"
	case 20:
		return "d=20"
	default:
		return "d=100"
	}
}

// --- Optimizer ablation ------------------------------------------------------

// BenchmarkOptimizerScan, -Anneal and -NearOptimal compare the three ways
// of finding d* on the same Table 2 configuration (U=300, m=3).
func BenchmarkOptimizerScan(b *testing.B) {
	cfg := optimizerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.Scan(cfg, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerAnneal(b *testing.B) {
	cfg := optimizerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.Anneal(cfg, core.AnnealOptions{MaxThreshold: 60, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerNearOptimal(b *testing.B) {
	cfg := optimizerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.NearOptimal(cfg, 60, true); err != nil {
			b.Fatal(err)
		}
	}
}

func optimizerConfig() core.Config {
	return core.Config{
		Model:    chain.TwoDimExact,
		Params:   tableParams,
		Costs:    core.Costs{Update: 300, Poll: paperdata.TablePollCost},
		MaxDelay: 3,
	}
}

// --- Partition ablation ------------------------------------------------------

// BenchmarkPartitionAblation compares the expected polled cells of the
// paper's SDF partitioner against per-ring, equal-cells and the DP-optimal
// partitioner across delay bounds (reported as expected cells per call at
// d=10, the quality side of the speed/quality trade).
func BenchmarkPartitionAblation(b *testing.B) {
	const d = 10
	pi, err := chain.Stationary(chain.TwoDimExact, tableParams, d)
	if err != nil {
		b.Fatal(err)
	}
	rings := grid.TwoDimHex.RingSizes(d)
	schemes := []paging.Scheme{paging.SDF{}, paging.PerRing{}, paging.EqualCells{}, paging.OptimalDP{}}
	for _, s := range schemes {
		b.Run(s.Name(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				part := s.Partition(rings, pi, 3)
				last = part.ExpectedCells(pi)
			}
			b.ReportMetric(last, "cells/call")
		})
	}
	b.Run("prob-order-dp", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			g := paging.ProbOrderDP(rings, pi, 3)
			last = g.ExpectedCells(rings, pi)
		}
		b.ReportMetric(last, "cells/call")
	})
}

// BenchmarkOptimizeMeanDelay measures the soft-QoS (expected-delay-bound)
// optimizer, which scans (d, m) jointly.
func BenchmarkOptimizeMeanDelay(b *testing.B) {
	cfg := optimizerConfig()
	cfg.MaxDelay = 0
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeMeanDelay(cfg, 1.5, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineAnalysis measures the analytical baseline evaluations
// (closed-form LA, transient-chain time- and movement-based).
func BenchmarkBaselineAnalysis(b *testing.B) {
	cfgs := []baseline.Config{
		{Kind: grid.TwoDimHex, Params: tableParams, Costs: core.Costs{Update: 100, Poll: 10}, Scheme: baseline.LA, Param: 3},
		{Kind: grid.TwoDimHex, Params: tableParams, Costs: core.Costs{Update: 100, Poll: 10}, Scheme: baseline.TimeBased, Param: 40},
		{Kind: grid.TwoDimHex, Params: tableParams, Costs: core.Costs{Update: 100, Poll: 10}, Scheme: baseline.MovementBased, Param: 8},
	}
	names := []string{"la", "time", "movement"}
	for i, cfg := range cfgs {
		cfg := cfg
		b.Run(names[i], func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := baseline.Analyze(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Simulator throughput ----------------------------------------------------

// BenchmarkWalkSimulator measures Monte-Carlo slots per second.
func BenchmarkWalkSimulator(b *testing.B) {
	cfg := core.Config{
		Model:    chain.TwoDimExact,
		Params:   tableParams,
		Costs:    core.Costs{Update: 100, Poll: 10},
		MaxDelay: 3,
	}
	b.ResetTimer()
	if _, err := walk.Run(cfg, 4, int64(b.N)+1, 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNetworkSimulator measures DES terminal-slots per second (10
// terminals).
func BenchmarkNetworkSimulator(b *testing.B) {
	cfg := sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   tableParams,
			Costs:    core.Costs{Update: 100, Poll: 10},
			MaxDelay: 3,
		},
		Terminals: 10,
		Threshold: 3,
		Seed:      1,
	}
	slots := int64(b.N)/10 + 1
	b.ResetTimer()
	if _, err := sim.Run(cfg, slots); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunSharded measures the simulation engines' scaling:
// terminal-slots per second at 10k–1M terminals, for the slot-batched
// fast path, the columnar cohort engine and the reference event-driven
// engine, for one shard (the single-threaded Run) versus one shard per
// core. Results are bit-identical across every variant (the
// engine-equivalence and shard-count-invariance contracts); only the
// wall clock changes.
func BenchmarkRunSharded(b *testing.B) {
	shardCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		shardCounts = append(shardCounts, p)
	}
	for _, engine := range []sim.Engine{sim.EngineFast, sim.EngineCols, sim.EngineDES} {
		for _, terms := range []int{10_000, 100_000, 1_000_000} {
			for _, shards := range shardCounts {
				b.Run(fmt.Sprintf("engine=%s/terminals=%d/shards=%d", engine, terms, shards), func(b *testing.B) {
					cfg := sim.Config{
						Core: core.Config{
							Model:    chain.TwoDimExact,
							Params:   tableParams,
							Costs:    core.Costs{Update: 100, Poll: 10},
							MaxDelay: 3,
						},
						Terminals: terms,
						Threshold: 3,
						Seed:      1,
						Engine:    engine,
					}
					// Enough slots that steady-state slot work dominates the
					// per-run setup (terminal provisioning, RNG seeding);
					// at 4 slots the identical setup cost swamps both
					// engines and the comparison measures nothing.
					const slots = 64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := sim.RunSharded(cfg, slots, shards); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(terms)*slots*float64(b.N)/b.Elapsed().Seconds(),
						"terminal-slots/s")
				})
			}
		}
	}
}

// BenchmarkFastPathHotLoop measures the fast engine's steady-state cost
// per terminal-slot with one long-running terminal, so the one-time setup
// amortizes to nothing: slots scale with b.N, making allocs/op the hot
// loop's true allocation rate — which must be zero. Movement is heavy
// (q=0.5, threshold crossings send real updates through the wire codec)
// but calls are off, isolating the slot loop from the paging machinery.
func BenchmarkFastPathHotLoop(b *testing.B) {
	cfg := sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: 0.5, C: 0},
			Costs:    core.Costs{Update: 100, Poll: 10},
			MaxDelay: 3,
		},
		Terminals: 1,
		Threshold: 3,
		Seed:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := sim.Run(cfg, int64(b.N)+1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBaselineSimulator measures the baseline Monte-Carlo loop.
func BenchmarkBaselineSimulator(b *testing.B) {
	cfg := baseline.Config{
		Kind:   grid.TwoDimHex,
		Params: tableParams,
		Costs:  core.Costs{Update: 100, Poll: 10},
		Scheme: baseline.LA,
		Param:  2,
	}
	b.ResetTimer()
	if _, err := baseline.Simulate(cfg, int64(b.N)+1, 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceReplay measures trace replay throughput.
func BenchmarkTraceReplay(b *testing.B) {
	tr, err := trace.Generate(grid.TwoDimHex, tableParams, 100_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	costs := core.Costs{Update: 100, Poll: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Replay(tr, 3, 2, costs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100_000, "slots/op")
}

// --- Wire codec ---------------------------------------------------------------

// BenchmarkWireEncodeDecode measures the signalling codec.
func BenchmarkWireEncodeDecode(b *testing.B) {
	buf := make([]byte, 0, wire.UpdateSize)
	for i := 0; i < b.N; i++ {
		u := wire.Update{Terminal: uint32(i), Cell: wire.Cell{Q: int32(i), R: -int32(i)}, Seq: uint32(i), Threshold: 5}
		buf = u.Encode(buf[:0])
		if _, err := wire.DecodeUpdate(buf); err != nil {
			b.Fatal(err)
		}
	}
}
